#!/usr/bin/env python3
"""Plot the paper's figures from bench CSV exports.

Usage:
    BURST_CSV_DIR=out mkdir -p out && ./build/bench/fig02_cov \
        && ./build/bench/fig03_throughput && ./build/bench/fig04_loss \
        && ./build/bench/fig13_timeout_dupack
    python3 scripts/plot_figures.py out

Each fig*.csv written by the benches is rendered to fig*.png. Requires
matplotlib; everything else in the repository is dependency-free C++.
"""
import csv
import pathlib
import sys


def plot_file(path: pathlib.Path, out: pathlib.Path) -> None:
    try:
        import matplotlib
    except ModuleNotFoundError:
        raise SystemExit(
            "matplotlib is required for plotting: pip install matplotlib")

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    with path.open() as f:
        rows = list(csv.reader(f))
    header, data = rows[0], rows[1:]
    xs = [float(r[0]) for r in data]
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for col in range(1, len(header)):
        ax.plot(xs, [float(r[col]) for r in data], marker="o", ms=3,
                label=header[col])
    ax.set_xlabel("number of clients")
    ax.set_ylabel(path.stem.replace("_", " "))
    ax.legend(fontsize=8)
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(out)
    print(f"wrote {out}")


def main() -> int:
    directory = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    csvs = sorted(directory.glob("*.csv"))
    if not csvs:
        print(f"no CSV files in {directory}; run the benches with "
              "BURST_CSV_DIR set first", file=sys.stderr)
        return 1
    for path in csvs:
        plot_file(path, path.with_suffix(".png"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
