#!/usr/bin/env python3
"""Gate the packet-path benchmark against a committed baseline.

Usage: check_packet_path.py CURRENT.json [--baseline PATH] [--threshold F]

Two kinds of checks, per row shared by the current run and the baseline:

* Deterministic counters (``events_per_hop``, and ``trace_records`` per
  event on traced rows): these are exact properties of the event
  machinery — 1 scheduler event per hop on an idle link, ~2 on a
  saturated one, ~0.95 trace records per event on the traced fig02
  workload — and must not creep up. Budget: 2% (the smoke workload's
  shorter runs shift the start-up fraction slightly).

* Wall time (``ns_per_op``), normalized by the ``calib_sched_pop_d64``
  row: the calibration row is a pure scheduler schedule+pop loop that the
  link/timer code never touches, so the ratio row/calib cancels the
  machine (CI runners differ wildly run to run). Budget: --threshold
  (default 25%) over the baseline's ratio.

The baseline is full-mode; CI runs --smoke. ops counts differ, but
events-per-hop and normalized ns/op are workload-size invariant, which is
what makes the comparison meaningful across modes.

Exit code 0 = within budget, 1 = regression, 2 = bad invocation/input.
"""

import argparse
import json
import sys

CALIB_ROW = "calib_sched_pop_d64"
COUNTER_TOLERANCE = 0.02


def load_rows(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"check_packet_path: cannot read {path}: {e}")
    if doc.get("bench") != "packet_path":
        sys.exit(f"check_packet_path: {path} is not a packet_path result")
    return {row["name"]: row for row in doc.get("results", [])}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current", help="freshly measured BENCH_packet_path.json")
    ap.add_argument(
        "--baseline",
        default="bench/baselines/BENCH_packet_path_wheel.json",
        help="committed reference run (default: %(default)s)",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional regression in normalized wall time "
        "(default: %(default)s)",
    )
    args = ap.parse_args()

    cur = load_rows(args.current)
    base = load_rows(args.baseline)
    for rows, path in ((cur, args.current), (base, args.baseline)):
        if CALIB_ROW not in rows:
            sys.exit(f"check_packet_path: {path} lacks the {CALIB_ROW} row")

    cur_calib = cur[CALIB_ROW]["ns_per_op"]
    base_calib = base[CALIB_ROW]["ns_per_op"]
    print(
        f"calibration: current {cur_calib:.1f} ns/op, "
        f"baseline {base_calib:.1f} ns/op "
        f"(machine factor {cur_calib / base_calib:.2f}x)"
    )

    failures = []
    for name, cur_row in sorted(cur.items()):
        base_row = base.get(name)
        if base_row is None or name == CALIB_ROW:
            continue

        if cur_row.get("events_per_hop", -1) >= 0 and base_row.get(
            "events_per_hop", -1
        ) >= 0:
            c, b = cur_row["events_per_hop"], base_row["events_per_hop"]
            ok = c <= b * (1 + COUNTER_TOLERANCE)
            print(
                f"  {name}: events/hop {c:.4f} vs baseline {b:.4f}"
                f" {'ok' if ok else 'REGRESSION'}"
            )
            if not ok:
                failures.append(
                    f"{name}: events/hop {c:.4f} > {b:.4f} "
                    f"(+{(c / b - 1) * 100:.1f}%)"
                )

        if cur_row.get("trace_records", -1) >= 0 and base_row.get(
            "trace_records", -1
        ) >= 0:
            c = cur_row["trace_records"] / cur_row["ops"]
            b = base_row["trace_records"] / base_row["ops"]
            ok = c <= b * (1 + COUNTER_TOLERANCE)
            print(
                f"  {name}: trace records/event {c:.4f} vs baseline {b:.4f}"
                f" {'ok' if ok else 'REGRESSION'}"
            )
            if not ok:
                failures.append(
                    f"{name}: trace records/event {c:.4f} > {b:.4f} "
                    f"(+{(c / b - 1) * 100:.1f}%)"
                )

        c_ratio = cur_row["ns_per_op"] / cur_calib
        b_ratio = base_row["ns_per_op"] / base_calib
        ok = c_ratio <= b_ratio * (1 + args.threshold)
        print(
            f"  {name}: normalized {c_ratio:.3f} vs baseline {b_ratio:.3f}"
            f" ({(c_ratio / b_ratio - 1) * 100:+.1f}%)"
            f" {'ok' if ok else 'REGRESSION'}"
        )
        if not ok:
            failures.append(
                f"{name}: normalized wall {c_ratio:.3f} exceeds baseline "
                f"{b_ratio:.3f} by more than {args.threshold * 100:.0f}%"
            )

    if failures:
        print("\npacket-path regression gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("packet-path regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
