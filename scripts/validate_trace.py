#!/usr/bin/env python3
"""Validate a burstsim JSONL trace against scripts/trace_event.schema.json.

Usage:
    python3 scripts/validate_trace.py TRACE.jsonl [--max-errors=N]

Implements the schema's contract with no third-party dependencies (the
repository is dependency-free beyond the C++ toolchain). A line is either
a packet/transport trace event (TraceSink export) or a flight-recorder
sample (FlightRecorder export), discriminated by the "type" token; both
families are checked for required keys, no unknown keys, per-field
types/ranges, the cc_state_change <-> "state" pairing, the fr_sample
histogram shape, and nondecreasing timestamps (every export is sorted by
simulated time). Exits 0 when the trace is valid.

CI runs this on small traced scenarios (sequential, --lp=2, and a
flight-recorded run); see .github/workflows/ci.yml.
"""
import json
import pathlib
import sys

SCHEMA_PATH = pathlib.Path(__file__).resolve().parent / "trace_event.schema.json"

REQUIRED = ("t", "type", "site", "flow", "seq", "value", "aux", "detail")
OPTIONAL = ("state", "lp")
FR_REQUIRED = (
    "t",
    "type",
    "lp",
    "interval",
    "qlen",
    "red_avg",
    "events",
    "arrivals",
    "drops",
    "cov",
    "cwnd_mean",
    "cwnd_max",
    "cwnd_hist",
)
FR_HIST_BINS = 12


def load_schema_contract():
    """The TraceEventType enum and fr_sample key list, read from the
    schema so the two files cannot drift apart silently."""
    with SCHEMA_PATH.open() as f:
        schema = json.load(f)
    defs = schema["definitions"]
    tokens = defs["trace_event"]["properties"]["type"]["enum"]
    assert tokens, "schema lost its type enum"
    fr_required = defs["fr_sample"]["required"]
    assert tuple(fr_required) == FR_REQUIRED, (
        "schema fr_sample required keys drifted from validate_trace.py"
    )
    bins = defs["fr_sample"]["properties"]["cwnd_hist"]["minItems"]
    assert bins == FR_HIST_BINS, "schema cwnd_hist bin count drifted"
    return set(tokens)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def is_integer(v):
    return isinstance(v, int) and not isinstance(v, bool)


def check_fr_sample(rec):
    """Yields error strings for one parsed fr_sample record."""
    for key in FR_REQUIRED:
        if key not in rec:
            yield f"missing required key '{key}'"
    for key in rec:
        if key not in FR_REQUIRED:
            yield f"unknown key '{key}'"

    for key, lo in (("t", 0), ("qlen", 0), ("red_avg", -1), ("cov", 0),
                    ("cwnd_mean", 0), ("cwnd_max", 0)):
        v = rec.get(key)
        if v is None:
            continue
        if not is_number(v):
            yield f"'{key}' is not a number"
        elif v < lo:
            yield f"'{key}' out of range ({v})"

    interval = rec.get("interval")
    if interval is not None:
        if not is_number(interval):
            yield "'interval' is not a number"
        elif interval <= 0:
            yield f"'interval' is not positive ({interval})"

    for key in ("lp", "events", "arrivals", "drops"):
        v = rec.get(key)
        if v is None:
            continue
        if not is_integer(v):
            yield f"'{key}' is not an integer"
        elif v < 0:
            yield f"'{key}' is negative ({v})"

    hist = rec.get("cwnd_hist")
    if hist is not None:
        if not isinstance(hist, list) or len(hist) != FR_HIST_BINS:
            yield f"'cwnd_hist' is not a {FR_HIST_BINS}-element array"
        elif any(not is_integer(b) or b < 0 for b in hist):
            yield "'cwnd_hist' holds a non-counter element"


def check_trace_event(rec, tokens):
    """Yields error strings for one parsed trace-event record."""
    for key in REQUIRED:
        if key not in rec:
            yield f"missing required key '{key}'"
    for key in rec:
        if key not in REQUIRED and key not in OPTIONAL:
            yield f"unknown key '{key}'"

    t = rec.get("t")
    if not is_number(t):
        yield "'t' is not a number"
    elif t < 0:
        yield f"'t' is negative ({t})"

    typ = rec.get("type")
    if not isinstance(typ, str):
        yield "'type' is not a string"
    elif typ not in tokens:
        yield f"unknown type token '{typ}'"

    site = rec.get("site")
    if not isinstance(site, str) or not site:
        yield "'site' is not a non-empty string"

    for key, lo, hi in (("flow", -1, None), ("seq", -1, None),
                        ("detail", 0, 65535), ("lp", 0, 255)):
        v = rec.get(key)
        if v is None and key == "lp":
            continue  # lp is optional on trace events
        if not is_integer(v):
            yield f"'{key}' is not an integer"
            continue
        if v < lo or (hi is not None and v > hi):
            yield f"'{key}' out of range ({v})"

    for key in ("value", "aux"):
        v = rec.get(key)
        if not is_number(v):
            yield f"'{key}' is not a number"

    state = rec.get("state")
    if state is not None:
        if typ != "cc_state_change":
            yield f"'state' present on a '{typ}' record"
        elif not isinstance(state, str) or not state:
            yield "'state' is not a non-empty string"


def check_record(rec, tokens):
    """Yields error strings for one parsed record of either family."""
    if not isinstance(rec, dict):
        yield "record is not a JSON object"
        return
    if rec.get("type") == "fr_sample":
        yield from check_fr_sample(rec)
    else:
        yield from check_trace_event(rec, tokens)


def validate(path, max_errors):
    tokens = load_schema_contract()
    errors = 0
    records = 0
    prev_t = None

    def report(line_no, msg):
        nonlocal errors
        errors += 1
        if errors <= max_errors:
            print(f"{path}:{line_no}: {msg}", file=sys.stderr)

    with open(path) as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                report(line_no, "blank line")
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                report(line_no, f"not valid JSON: {e}")
                continue
            records += 1
            for msg in check_record(rec, tokens):
                report(line_no, msg)
            t = rec.get("t") if isinstance(rec, dict) else None
            if isinstance(t, (int, float)) and not isinstance(t, bool):
                if prev_t is not None and t < prev_t:
                    report(line_no,
                           f"timestamps not sorted ({t} after {prev_t})")
                prev_t = t

    if records == 0:
        print(f"{path}: no records", file=sys.stderr)
        return 1
    if errors > max_errors:
        print(f"{path}: ... {errors - max_errors} further errors suppressed",
              file=sys.stderr)
    if errors:
        print(f"{path}: INVALID ({errors} errors in {records} records)",
              file=sys.stderr)
        return 1
    print(f"{path}: OK ({records} records)")
    return 0


def main():
    args = [a for a in sys.argv[1:]]
    max_errors = 20
    paths = []
    for a in args:
        if a.startswith("--max-errors="):
            max_errors = int(a.split("=", 1)[1])
        elif a in ("-h", "--help"):
            print(__doc__)
            return 0
        else:
            paths.append(a)
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2
    rc = 0
    for p in paths:
        rc |= validate(p, max_errors)
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
