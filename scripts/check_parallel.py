#!/usr/bin/env python3
"""Gate the conservative parallel engine's bench rows.

Usage:
  check_parallel.py --packet-path BENCH_packet_path.json \
                    --meanfield BENCH_meanfield.json \
                    [--baseline bench/baselines/BENCH_parallel.json] \
                    [--threshold F] [--write-baseline PATH]

Three kinds of checks:

* Events exact (within each current file, no baseline needed): a parallel
  row must execute EXACTLY as many simulator events as its sequential
  twin — the remote delivery event replaces the producer-side fused local
  delivery one-for-one, so any drift means the engines diverged.
  ``fig02_n60_reno_red_lp2`` is checked against ``fig02_n60_reno_red``
  (sim_events and delivered), and every ``meanfield_nN_lpK`` row against
  ``meanfield_nN`` (ops). ``fig02_n60_reno_red_lp2_traced`` is checked
  against ``fig02_n60_reno_red_traced`` on sim_events, delivered AND
  trace_records: the merged per-LP rings must reproduce the lp=1 trace
  record-for-record.

* Flight-recorder overhead (within the meanfield file): every
  ``meanfield_nN_fr`` row's wall must stay within 5% (+0.15 s slack) of
  its untraced ``meanfield_nN`` twin, with a nonzero fixed sample budget
  — the huge-N sampler must be effectively free.

* Wall time, normalized by the ``calib_sched_pop_d64`` row of the same
  file and compared per-row against the committed baseline (same scheme
  as check_packet_path.py — the ratio cancels the machine). Budget:
  --threshold (default 25%). Rows absent from the baseline are skipped.

* Speedup floors (meanfield, full mode only): at N=1e5 the 2-LP row must
  run >= 1.4x faster than the sequential row and the 4-LP row >= 2.0x —
  but ONLY when the reporting machine has at least that many hardware
  threads (the file's ``hw_threads`` field). A 1-core runner executes the
  LP threads serially plus barrier overhead; demanding speedup there
  would gate on hardware, not code.

--write-baseline snapshots the rows this script cares about (calibration,
parallel rows, their sequential twins) from the current files into a
combined baseline JSON; run it on a quiet machine after an intentional
perf change, same as re-pinning the other bench baselines.

Exit code 0 = within budget, 1 = regression, 2 = bad invocation/input.
"""

import argparse
import json
import re
import sys

CALIB_ROW = "calib_sched_pop_d64"
MEANFIELD_LP = re.compile(r"^(meanfield_n\d+)_lp(\d+)$")
PACKET_LP = re.compile(r"^(fig02_n60_reno_red)_lp(\d+)$")
# Traced parallel row vs traced sequential row: per-LP rings merged at
# export must reproduce the lp=1 trace exactly, so record counts (and the
# untouched packet counters) must be equal.
PACKET_LP_TRACED = re.compile(r"^(fig02_n60_reno_red)_lp(\d+)_traced$")
MEANFIELD_FR = re.compile(r"^(meanfield_n\d+)_fr$")
# Flight-recorder overhead ceiling: wall within 5% of the untraced twin
# (plus a small absolute slack so sub-second smoke rows don't gate on
# scheduler noise).
FR_WALL_RATIO = 1.05
FR_WALL_SLACK_S = 0.15
# (sequential row, parallel row, floor) — enforced at full mode only,
# and only when hw_threads covers the LP count.
SPEEDUP_FLOORS = [
    ("meanfield_n100000", "meanfield_n100000_lp2", 2, 1.4),
    ("meanfield_n100000", "meanfield_n100000_lp4", 4, 2.0),
]


def load(path, bench):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"check_parallel: cannot read {path}: {e}")
    if doc.get("bench") != bench:
        sys.exit(f"check_parallel: {path} is not a {bench} result")
    return doc


def rows_by_name(doc):
    return {row["name"]: row for row in doc.get("results", [])}


def check_events_exact(rows, pattern, fields, failures, twin_suffix=""):
    """Every parallel row's counters must equal its sequential twin's."""
    found = 0
    for name in sorted(rows):
        m = pattern.match(name)
        if not m:
            continue
        found += 1
        twin = m.group(1) + twin_suffix
        seq = rows.get(twin)
        if seq is None:
            failures.append(f"{name}: sequential twin {twin} missing")
            continue
        for field in fields:
            c, b = rows[name].get(field), seq.get(field)
            ok = c == b and c is not None
            print(
                f"  {name}: {field} {c} vs sequential {b}"
                f" {'exact' if ok else 'MISMATCH'}"
            )
            if not ok:
                failures.append(
                    f"{name}: {field} {c} != sequential twin's {b}"
                )
    return found


def check_normalized_wall(label, cur, base, threshold, failures):
    """Same row/calib ratio scheme as check_packet_path.py, lp rows only."""
    if base is None:
        print(f"  {label}: no baseline rows — normalized-wall check skipped")
        return
    if CALIB_ROW not in cur or CALIB_ROW not in base:
        failures.append(f"{label}: {CALIB_ROW} row missing (current or baseline)")
        return
    cur_calib = cur[CALIB_ROW]["ns_per_op"]
    base_calib = base[CALIB_ROW]["ns_per_op"]
    for name in sorted(cur):
        if "_lp" not in name or name not in base:
            continue
        c_ratio = cur[name]["ns_per_op"] / cur_calib
        b_ratio = base[name]["ns_per_op"] / base_calib
        ok = c_ratio <= b_ratio * (1 + threshold)
        print(
            f"  {name}: normalized {c_ratio:.3f} vs baseline {b_ratio:.3f}"
            f" ({(c_ratio / b_ratio - 1) * 100:+.1f}%)"
            f" {'ok' if ok else 'REGRESSION'}"
        )
        if not ok:
            failures.append(
                f"{name}: normalized wall {c_ratio:.3f} exceeds baseline "
                f"{b_ratio:.3f} by more than {threshold * 100:.0f}%"
            )


def check_flight_recorder(rows, failures):
    """FR rows: wall within the overhead ceiling of the untraced twin,
    sample budget fixed and nonzero."""
    found = 0
    for name in sorted(rows):
        m = MEANFIELD_FR.match(name)
        if not m:
            continue
        found += 1
        row, seq = rows[name], rows.get(m.group(1))
        if seq is None:
            failures.append(f"{name}: untraced twin {m.group(1)} missing")
            continue
        # Overhead = fr wall vs untraced wall; both rows came from the
        # same invocation on the same machine, so the raw ratio is fair.
        ok_wall = row["wall_s"] <= seq["wall_s"] * FR_WALL_RATIO + FR_WALL_SLACK_S
        ok_budget = row.get("fr_bytes", 0) > 0 and row.get("fr_samples", 0) > 0
        overhead = (
            (row["wall_s"] / seq["wall_s"] - 1) * 100 if seq["wall_s"] else 0.0
        )
        print(
            f"  {name}: wall {row['wall_s']:.3f} s vs untraced"
            f" {seq['wall_s']:.3f} s ({overhead:+.1f}%),"
            f" {row.get('fr_samples', 0)} samples in"
            f" {row.get('fr_bytes', 0)} B"
            f" {'ok' if ok_wall and ok_budget else 'REGRESSION'}"
        )
        if not ok_wall:
            failures.append(
                f"{name}: wall {row['wall_s']:.3f} s exceeds untraced twin's "
                f"{seq['wall_s']:.3f} s by more than "
                f"{(FR_WALL_RATIO - 1) * 100:.0f}% (+{FR_WALL_SLACK_S} s slack)"
            )
        if not ok_budget:
            failures.append(f"{name}: flight-recorder budget/sample fields absent")
    return found


def check_speedup(doc, rows, failures):
    if doc.get("mode") != "full":
        print("  speedup floors: smoke mode — skipped (full-size rows only)")
        return
    hw = int(doc.get("hw_threads", 0))
    for seq_name, lp_name, lanes, floor in SPEEDUP_FLOORS:
        if lp_name not in rows or seq_name not in rows:
            continue
        if hw < lanes:
            print(
                f"  {lp_name}: machine has {hw} hw threads < {lanes} LPs"
                " — speedup floor not applicable"
            )
            continue
        speedup = rows[seq_name]["wall_s"] / rows[lp_name]["wall_s"]
        ok = speedup >= floor
        print(
            f"  {lp_name}: speedup {speedup:.2f}x vs floor {floor:.1f}x"
            f" {'ok' if ok else 'REGRESSION'}"
        )
        if not ok:
            failures.append(
                f"{lp_name}: speedup {speedup:.2f}x below the {floor:.1f}x floor"
            )


def baseline_subset(rows, patterns):
    """Calibration + parallel/traced/fr rows + their sequential twins."""
    keep = {CALIB_ROW}
    for name in rows:
        for pattern, twin_suffix in patterns:
            m = pattern.match(name)
            if m:
                keep.add(name)
                keep.add(m.group(1) + twin_suffix)
    return [rows[n] for n in sorted(keep) if n in rows]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--packet-path", required=True,
                    help="freshly measured BENCH_packet_path.json")
    ap.add_argument("--meanfield", required=True,
                    help="freshly measured BENCH_meanfield.json")
    ap.add_argument(
        "--baseline",
        default="bench/baselines/BENCH_parallel.json",
        help="committed reference rows (default: %(default)s)",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional regression in normalized wall time "
        "(default: %(default)s)",
    )
    ap.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="snapshot the relevant rows of the current files to PATH "
        "and exit (no gating)",
    )
    args = ap.parse_args()

    pp_doc = load(args.packet_path, "packet_path")
    mf_doc = load(args.meanfield, "fig_meanfield")
    pp = rows_by_name(pp_doc)
    mf = rows_by_name(mf_doc)

    if args.write_baseline:
        doc = {
            "bench": "parallel",
            "schema": 1,
            "packet_path": baseline_subset(
                pp, [(PACKET_LP, ""), (PACKET_LP_TRACED, "_traced")]
            ),
            "meanfield": baseline_subset(
                mf, [(MEANFIELD_LP, ""), (MEANFIELD_FR, "")]
            ),
        }
        with open(args.write_baseline, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"wrote {args.write_baseline}")
        return 0

    failures = []

    print("events exact (parallel vs sequential twin):")
    n_pp = check_events_exact(pp, PACKET_LP, ("sim_events", "delivered"),
                              failures)
    n_mf = check_events_exact(mf, MEANFIELD_LP, ("ops",), failures)
    if n_pp == 0:
        failures.append("no fig02 lp rows found in the packet_path file")
    if n_mf == 0:
        failures.append("no meanfield lp rows found in the meanfield file")

    print("traced lp rows (merged trace vs sequential traced twin):")
    n_tr = check_events_exact(
        pp,
        PACKET_LP_TRACED,
        ("sim_events", "delivered", "trace_records"),
        failures,
        twin_suffix="_traced",
    )
    if n_tr == 0:
        failures.append("no traced lp rows found in the packet_path file")

    print("flight-recorder overhead (fr rows vs untraced twin):")
    n_fr = check_flight_recorder(mf, failures)
    if n_fr == 0:
        failures.append("no flight-recorder rows found in the meanfield file")

    base_pp = base_mf = None
    try:
        with open(args.baseline, encoding="utf-8") as f:
            base_doc = json.load(f)
        base_pp = {r["name"]: r for r in base_doc.get("packet_path", [])}
        base_mf = {r["name"]: r for r in base_doc.get("meanfield", [])}
    except OSError:
        print(f"baseline {args.baseline} not found — wall checks skipped")
    except ValueError as e:
        sys.exit(f"check_parallel: cannot parse {args.baseline}: {e}")

    print("calibration-normalized wall (parallel rows vs baseline):")
    check_normalized_wall("packet_path", pp, base_pp, args.threshold, failures)
    check_normalized_wall("meanfield", mf, base_mf, args.threshold, failures)

    print("speedup floors (full mode, hardware permitting):")
    check_speedup(mf_doc, mf, failures)

    if failures:
        print("\nparallel-engine gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("parallel-engine gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
