#!/usr/bin/env python3
"""Gate the scheduler benchmark against a committed baseline.

Usage: check_sched_events.py CURRENT.json [--baseline PATH] [--threshold F]

Checks, following the check_packet_path.py model:

* Wall time (``ns_per_op``) per row, normalized by the
  ``schedule_pop_d64`` calibration row — a pure schedule+pop loop every
  scheduler change also moves, so the ratio cancels the machine but not
  a change's *relative* effect on deeper/wider workloads. Budget:
  --threshold (default 25%) over the baseline's ratio.

* Heap-vs-wheel crossover (in-run, machine-independent): at every
  pending count >= 1e5 present in the current run, the
  ``pop_rearm_wheel_pN`` row must not be slower than its
  ``pop_rearm_heap_pN`` twin by more than 10% — the timing wheel exists
  for exactly this regime (EXPERIMENTS.md records the measured
  crossover), so losing it is a regression even if absolute times look
  fine.

The baseline is full-mode; CI runs --smoke. Normalized ns/op and the
in-run heap/wheel ratio are workload-size invariant, which is what makes
the comparison meaningful across modes.

Exit code 0 = within budget, 1 = regression, 2 = bad invocation/input.
"""

import argparse
import json
import re
import sys

CALIB_ROW = "schedule_pop_d64"
CROSSOVER_MIN_PENDING = 100_000
CROSSOVER_SLACK = 0.10


def load_rows(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"check_sched_events: cannot read {path}: {e}")
    if doc.get("bench") != "sched_events":
        sys.exit(f"check_sched_events: {path} is not a sched_events result")
    return {row["name"]: row for row in doc.get("results", [])}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current", help="freshly measured BENCH_sched.json")
    ap.add_argument(
        "--baseline",
        default="bench/baselines/BENCH_sched_wheel.json",
        help="committed reference run (default: %(default)s)",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional regression in normalized wall time "
        "(default: %(default)s)",
    )
    args = ap.parse_args()

    cur = load_rows(args.current)
    base = load_rows(args.baseline)
    for rows, path in ((cur, args.current), (base, args.baseline)):
        if CALIB_ROW not in rows:
            sys.exit(f"check_sched_events: {path} lacks the {CALIB_ROW} row")

    cur_calib = cur[CALIB_ROW]["ns_per_op"]
    base_calib = base[CALIB_ROW]["ns_per_op"]
    print(
        f"calibration: current {cur_calib:.1f} ns/op, "
        f"baseline {base_calib:.1f} ns/op "
        f"(machine factor {cur_calib / base_calib:.2f}x)"
    )

    failures = []
    for name, cur_row in sorted(cur.items()):
        base_row = base.get(name)
        if base_row is None or name == CALIB_ROW:
            continue
        c_ratio = cur_row["ns_per_op"] / cur_calib
        b_ratio = base_row["ns_per_op"] / base_calib
        ok = c_ratio <= b_ratio * (1 + args.threshold)
        print(
            f"  {name}: normalized {c_ratio:.3f} vs baseline {b_ratio:.3f}"
            f" ({(c_ratio / b_ratio - 1) * 100:+.1f}%)"
            f" {'ok' if ok else 'REGRESSION'}"
        )
        if not ok:
            failures.append(
                f"{name}: normalized wall {c_ratio:.3f} exceeds baseline "
                f"{b_ratio:.3f} by more than {args.threshold * 100:.0f}%"
            )

    # In-run crossover: the wheel must hold its win at mean-field scale.
    checked_crossover = False
    for name, cur_row in sorted(cur.items()):
        m = re.fullmatch(r"pop_rearm_heap_p(\d+)", name)
        if not m or int(m.group(1)) < CROSSOVER_MIN_PENDING:
            continue
        wheel_row = cur.get(f"pop_rearm_wheel_p{m.group(1)}")
        if wheel_row is None:
            failures.append(f"{name}: missing wheel twin row")
            continue
        checked_crossover = True
        h, w = cur_row["ns_per_op"], wheel_row["ns_per_op"]
        ok = w <= h * (1 + CROSSOVER_SLACK)
        print(
            f"  crossover p{m.group(1)}: wheel {w:.1f} ns/op vs heap "
            f"{h:.1f} ns/op ({(w / h - 1) * 100:+.1f}%)"
            f" {'ok' if ok else 'REGRESSION'}"
        )
        if not ok:
            failures.append(
                f"pop_rearm p{m.group(1)}: wheel {w:.1f} ns/op slower than "
                f"heap {h:.1f} ns/op beyond {CROSSOVER_SLACK * 100:.0f}% slack"
            )
    if not checked_crossover:
        failures.append(
            f"no pop_rearm rows at >= {CROSSOVER_MIN_PENDING} pending: "
            "the crossover regime is unmeasured"
        )

    if failures:
        print("\nsched-events regression gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("sched-events regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
