// Ablation: RED thresholds and max_p. The paper's explanation for RED's
// damage is that (min_th, max_th) make the buffer *look* smaller than B to
// the TCP streams. If that is the mechanism, raising max_th toward B
// should recover most of the plain-FIFO behavior.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  banner("Ablation — RED parameters (min_th, max_th, max_p)",
         "RED's harm comes from shrinking the apparent buffer: "
         "max_th -> B recovers FIFO-like behavior");

  const int n = 45;
  Scenario fifo = paper_base();
  fifo.num_clients = n;
  fifo.transport = Transport::kReno;
  const auto r_fifo = run_experiment(fifo);

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"FIFO (B=50)", "-", fmt(r_fifo.cov, 4),
                  std::to_string(r_fifo.delivered), fmt(r_fifo.loss_pct, 2)});

  struct Cfg {
    double min_th, max_th, max_p;
  };
  double cov_paper = 0.0, cov_wide = 0.0;
  std::uint64_t thr_paper = 0, thr_wide = 0;
  for (const Cfg& c : {Cfg{5, 15, 0.1}, Cfg{10, 40, 0.1}, Cfg{10, 40, 0.02},
                       Cfg{20, 48, 0.1}, Cfg{40, 50, 0.1}}) {
    Scenario sc = fifo;
    sc.gateway = GatewayQueue::kRed;
    sc.red_min_th = c.min_th;
    sc.red_max_th = c.max_th;
    sc.red_max_p = c.max_p;
    const auto r = run_experiment(sc);
    rows.push_back({"RED " + fmt(c.min_th, 0) + "/" + fmt(c.max_th, 0),
                    fmt(c.max_p, 2), fmt(r.cov, 4),
                    std::to_string(r.delivered), fmt(r.loss_pct, 2)});
    if (c.min_th == 10 && c.max_th == 40 && c.max_p == 0.1) {
      cov_paper = r.cov;
      thr_paper = r.delivered;
    }
    if (c.min_th == 40 && c.max_th == 50) {
      cov_wide = r.cov;
      thr_wide = r.delivered;
    }
  }
  print_table(std::cout, {"gateway", "max_p", "cov", "delivered", "loss%"},
              rows);

  std::cout << '\n';
  verdict(cov_paper > r_fifo.cov,
          "the paper's RED (10/40) is burstier than FIFO");
  verdict(thr_paper < r_fifo.delivered,
          "the paper's RED (10/40) loses throughput vs FIFO");
  verdict(thr_wide > thr_paper,
          "widening max_th toward B recovers throughput (apparent-buffer "
          "mechanism confirmed)");
  verdict(cov_wide < cov_paper,
          "widening max_th toward B reduces burstiness");
  return 0;
}
