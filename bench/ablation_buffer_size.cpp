// Ablation: gateway buffer size. Sec 3.2.3 notes (citing Lakshman &
// Madhow) that Reno's performance varies strongly with the gateway buffer,
// while Vegas only needs alpha..beta packets per stream. We sweep B and
// compare the two under heavy congestion.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  banner("Ablation — gateway buffer size B",
         "Reno is buffer-hungry (throughput/loss improve with B); Vegas "
         "needs only its alpha..beta per-stream allotment");

  const int n = 45;
  std::vector<std::vector<std::string>> rows;
  double reno_loss_25 = 0, reno_loss_100 = 0, reno_loss_200 = 0;
  double vegas_loss_100 = 0, vegas_loss_200 = 0;
  for (std::size_t b : {25u, 50u, 100u, 200u}) {
    for (Transport t : {Transport::kReno, Transport::kVegas}) {
      Scenario sc = paper_base();
      sc.num_clients = n;
      sc.transport = t;
      sc.gateway_buffer = b;
      const auto r = run_experiment(sc);
      rows.push_back({std::to_string(b), to_string(t), fmt(r.cov, 4),
                      std::to_string(r.delivered), fmt(r.loss_pct, 2),
                      std::to_string(r.timeouts)});
      if (t == Transport::kReno && b == 25u) reno_loss_25 = r.loss_pct;
      if (t == Transport::kReno && b == 100u) reno_loss_100 = r.loss_pct;
      if (t == Transport::kReno && b == 200u) reno_loss_200 = r.loss_pct;
      if (t == Transport::kVegas && b == 100u) vegas_loss_100 = r.loss_pct;
      if (t == Transport::kVegas && b == 200u) vegas_loss_200 = r.loss_pct;
    }
  }
  print_table(std::cout,
              {"B(pkts)", "transport", "cov", "delivered", "loss%", "timeouts"},
              rows);

  std::cout << '\n';
  verdict(reno_loss_200 < reno_loss_25,
          "larger buffers cut Reno's loss substantially");
  // Vegas only needs its aggregate alpha-target (~N = 45 packets): once B
  // clears that, extra buffer is wasted on it, while Reno keeps gaining.
  verdict(vegas_loss_100 < 0.3,
          "Vegas is essentially lossless once B exceeds N*alpha");
  const double reno_gain_tail = reno_loss_100 - reno_loss_200;
  const double vegas_gain_tail = vegas_loss_100 - vegas_loss_200;
  verdict(vegas_gain_tail <= reno_gain_tail + 0.01,
          "beyond N*alpha, extra buffer helps Reno but not Vegas");
  return 0;
}
