// sched_events: the event-core performance probe.
//
// Measures the scheduler hot loop in isolation (schedule/pop, with and
// without cancellations, at the heap depths a paper run actually sees)
// plus a timer-chain and a full N=100-client Reno/RED experiment, and
// writes the numbers to a JSON file (default BENCH_sched.json) so the
// perf trajectory across PRs has data instead of folklore.
//
// Modes:
//   (default)  full runs: ~1e7 hot-loop ops
//   --smoke    CI-sized: ~1e6 ops (seconds of wall time); the 10 s
//              simulated experiment row is identical in both modes
//
// Every workload is deterministic (fixed seeds, fixed op mixes); wall
// times are best-of --repeat (default 3) to shed scheduler noise.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/experiment.hpp"
#include "src/run/scenario_key.hpp"
#include "src/sim/scheduler.hpp"
#include "src/sim/simulator.hpp"

namespace {

using namespace burst;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct BenchRow {
  std::string name;
  std::uint64_t ops = 0;     // scheduler operations (or simulator events)
  double wall_s = 0.0;       // best-of-repeat wall time
  double ns_per_op = 0.0;
  double ops_per_sec = 0.0;
};

BenchRow finish(std::string name, std::uint64_t ops, double best_wall) {
  BenchRow r;
  r.name = std::move(name);
  r.ops = ops;
  r.wall_s = best_wall;
  r.ns_per_op = best_wall * 1e9 / static_cast<double>(ops);
  r.ops_per_sec = static_cast<double>(ops) / best_wall;
  return r;
}

// Cheap deterministic time jitter, independent of src/sim/random so the
// bench exercises the scheduler, not the RNG.
struct Mix {
  std::uint64_t s;
  double next() {  // in [0, 1)
    s += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }
};

// The hot loop of every simulation: pop the earliest event, schedule a
// successor. Heap depth is held at `depth` (a Table-1 N=60 run keeps a few
// hundred events pending: one per timer/in-flight packet).
BenchRow bench_schedule_pop(std::uint64_t ops, std::size_t depth, int repeat) {
  double best = 1e99;
  for (int rep = 0; rep < repeat; ++rep) {
    Scheduler s;
    Mix mix{42};
    Time now = 0.0;
    for (std::size_t i = 0; i < depth; ++i) {
      s.schedule_at(mix.next(), [] {});
    }
    const double t0 = now_s();
    for (std::uint64_t i = 0; i < ops; ++i) {
      auto ready = s.take_next();
      now = ready.at;
      s.schedule_at(now + mix.next(), [] {});
    }
    best = std::min(best, now_s() - t0);
    while (!s.empty()) s.take_next();
  }
  return finish("schedule_pop_d" + std::to_string(depth), ops, best);
}

// Same loop with a cancellation mix: TCP retransmit timers are rearmed on
// (almost) every ACK, so cancels are a first-class hot-path operation.
BenchRow bench_schedule_cancel_pop(std::uint64_t ops, std::size_t depth,
                                   int repeat) {
  double best = 1e99;
  for (int rep = 0; rep < repeat; ++rep) {
    Scheduler s;
    Mix mix{7};
    Time now = 0.0;
    std::vector<EventId> live(depth, kInvalidEventId);
    for (std::size_t i = 0; i < depth; ++i) {
      live[i] = s.schedule_at(mix.next(), [] {});
    }
    const double t0 = now_s();
    for (std::uint64_t i = 0; i < ops; ++i) {
      // Rearm a pseudo-random timer: cancel + schedule, then pop one.
      const std::size_t k = static_cast<std::size_t>(mix.next() * depth);
      s.cancel(live[k]);
      live[k] = s.schedule_at(now + mix.next(), [] {});
      auto ready = s.take_next();
      now = ready.at;
      const std::size_t j = static_cast<std::size_t>(mix.next() * depth);
      if (!s.pending(live[j])) live[j] = s.schedule_at(now + mix.next(), [] {});
    }
    best = std::min(best, now_s() - t0);
  }
  // 3 scheduler ops (cancel, schedule, pop) + 1 pending probe per iter.
  return finish("schedule_cancel_pop_d" + std::to_string(depth), ops * 4, best);
}

// The mean-field steady state: `pending` timers permanently armed while
// the hot loop pops the earliest and re-arms it over a fixed horizon.
// The heap variant (schedule_at) pays O(log pending) per op; the wheel
// variant (schedule_soft_at) parks far deadlines in O(1) buckets, so its
// cost tracks the near-term horizon instead. The paired rows measure the
// crossover (recorded in EXPERIMENTS.md): identical op sequence, same
// deadlines, only the backend differs.
BenchRow bench_pop_rearm(std::uint64_t ops, std::size_t pending, bool wheel,
                         int repeat) {
  constexpr Time kHorizon = 2.0;  // seconds of re-arm spread (RTO-scale)
  // The wheel's O(1) is amortized: cascades of coarse buckets land in
  // bursts as the cursor crosses level boundaries. A timed window
  // shorter than one full pass over the population samples an arbitrary
  // cascade phase (deterministically, since the op mix is fixed), so
  // time at least `pending` ops — every phase appears exactly once.
  const std::uint64_t timed_ops = std::max<std::uint64_t>(ops, pending);
  double best = 1e99;
  for (int rep = 0; rep < repeat; ++rep) {
    Scheduler s;
    Mix mix{1234};
    Time now = 0.0;
    const auto rearm = [&s, &now, wheel](Time at) {
      if (wheel) {
        s.schedule_soft_at(at, [] {}, now);
      } else {
        s.schedule_at(at, [] {}, now);
      }
    };
    for (std::size_t i = 0; i < pending; ++i) {
      rearm(now + kHorizon * (0.5 + 0.5 * mix.next()));
    }
    // Untimed warm-up: pop/re-arm once through the whole initial cohort.
    // Arming `pending` deadlines from time zero piles them into a few
    // coarse wheel buckets whose one-off cascade cost would otherwise be
    // amortized over however many timed ops the mode runs — making ns/op
    // depend on --smoke vs full. The timed loop below sees steady state.
    for (std::size_t i = 0; i < pending; ++i) {
      auto ready = s.take_next();
      now = ready.at;
      rearm(now + kHorizon * (0.5 + 0.5 * mix.next()));
    }
    const double t0 = now_s();
    for (std::uint64_t i = 0; i < timed_ops; ++i) {
      auto ready = s.take_next();
      now = ready.at;
      rearm(now + kHorizon * (0.5 + 0.5 * mix.next()));
    }
    best = std::min(best, now_s() - t0);
  }
  return finish((wheel ? "pop_rearm_wheel_p" : "pop_rearm_heap_p") +
                    std::to_string(pending),
                timed_ops, best);
}

BenchRow bench_timer_chain(std::uint64_t events, int repeat) {
  double best = 1e99;
  for (int rep = 0; rep < repeat; ++rep) {
    Simulator sim;
    std::uint64_t remaining = events;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.schedule(0.001, tick);
    };
    sim.schedule(0.001, tick);
    const double t0 = now_s();
    sim.run();
    best = std::min(best, now_s() - t0);
  }
  return finish("timer_chain", events, best);
}

BenchRow bench_experiment(double duration, int repeat) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 100;
  sc.transport = Transport::kReno;
  sc.gateway = GatewayQueue::kRed;
  sc.duration = duration;
  double best = 1e99;
  std::uint64_t events = 0;
  for (int rep = 0; rep < repeat; ++rep) {
    const double t0 = now_s();
    const ExperimentResult r = run_experiment(sc);
    best = std::min(best, now_s() - t0);
    events = r.sim_events ? r.sim_events : 1;
  }
  return finish("experiment_n100_reno_red", events, best);
}

void write_json(const std::string& path, const std::vector<BenchRow>& rows,
                bool smoke) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"bench\": \"sched_events\",\n  \"mode\": \""
      << (smoke ? "smoke" : "full") << "\",\n  \"schema\": 1,\n"
      << "  \"results\": [\n";
  out.precision(6);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"ops\": " << r.ops
        << ", \"wall_s\": " << r.wall_s << ", \"ns_per_op\": " << r.ns_per_op
        << ", \"ops_per_sec\": " << r.ops_per_sec << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!out.flush()) {
    std::cerr << "sched_events: failed to write " << path << "\n";
    std::exit(1);
  }
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int repeat = 3;
  std::string out_path = "BENCH_sched.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::max(1, std::atoi(arg.c_str() + 9));
    } else {
      std::cerr << "usage: sched_events [--smoke] [--repeat=N] [--out=PATH]\n";
      return 2;
    }
  }

  const std::uint64_t hot_ops = smoke ? 1'000'000 : 10'000'000;
  // The experiment row runs the full 10 s in both modes: it is cheap
  // (~60 ms wall) and the first seconds are slow-start transient, so a
  // shorter smoke run would measure a different per-event cost mix than
  // the baseline and the regression gate would compare apples to pears.
  const double exp_duration = 10.0;

  std::vector<BenchRow> rows;
  rows.push_back(bench_schedule_pop(hot_ops, 64, repeat));
  rows.push_back(bench_schedule_pop(hot_ops, 512, repeat));
  rows.push_back(bench_schedule_cancel_pop(hot_ops / 2, 512, repeat));
  // Heap-vs-wheel crossover sweep: 10^3..10^6 armed soft-deadline timers.
  for (const std::size_t pending :
       {std::size_t{1000}, std::size_t{10000}, std::size_t{100000},
        std::size_t{1000000}}) {
    rows.push_back(bench_pop_rearm(hot_ops / 10, pending, false, repeat));
    rows.push_back(bench_pop_rearm(hot_ops / 10, pending, true, repeat));
  }
  rows.push_back(bench_timer_chain(hot_ops / 2, repeat));
  rows.push_back(bench_experiment(exp_duration, repeat));

  for (const BenchRow& r : rows) {
    std::cout << r.name << ": " << r.ns_per_op << " ns/op  ("
              << static_cast<std::uint64_t>(r.ops_per_sec) << " ops/s, wall "
              << r.wall_s << " s)\n";
  }
  write_json(out_path, rows, smoke);
  return 0;
}
