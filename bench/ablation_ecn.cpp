// Ablation: ECN (marking instead of dropping at the RED gateway).
// The paper finds RED hurts because early *drops* force retransmissions
// and timeouts. If the signal is delivered without the loss (ECN), how
// much of the damage disappears?
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  banner("Ablation — ECN marking at the RED gateway",
         "delivering the congestion signal without dropping should recover "
         "throughput and cut timeouts versus plain RED");

  std::vector<std::vector<std::string>> rows;
  double red_loss = 0, ecn_loss = 0, red_cov = 0, ecn_cov = 0;
  std::uint64_t red_thr = 0, ecn_thr = 0, red_to = 0, ecn_to = 0;
  for (int n : {40, 50, 60}) {
    for (bool ecn : {false, true}) {
      Scenario sc = paper_base();
      sc.num_clients = n;
      sc.transport = Transport::kReno;
      sc.gateway = GatewayQueue::kRed;
      sc.ecn = ecn;
      const auto r = run_experiment(sc);
      rows.push_back({std::to_string(n), ecn ? "RED+ECN" : "RED",
                      fmt(r.cov, 4), std::to_string(r.delivered),
                      fmt(r.loss_pct, 2), std::to_string(r.timeouts)});
      if (n == 50) {
        (ecn ? ecn_loss : red_loss) = r.loss_pct;
        (ecn ? ecn_cov : red_cov) = r.cov;
        (ecn ? ecn_thr : red_thr) = r.delivered;
        (ecn ? ecn_to : red_to) = r.timeouts;
      }
    }
  }
  print_table(std::cout,
              {"clients", "gateway", "cov", "delivered", "loss%", "timeouts"},
              rows);

  std::cout << '\n';
  verdict(ecn_loss < red_loss, "ECN cuts the packet-loss percentage");
  verdict(ecn_thr > red_thr, "ECN recovers throughput lost to RED drops");
  verdict(ecn_to < red_to, "ECN cuts the timeout count");
  verdict(ecn_cov < red_cov,
          "ECN smooths the aggregate (less drop-driven re-slow-start)");
  return 0;
}
