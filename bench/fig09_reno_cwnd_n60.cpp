// Figure 9: evolution of TCP Reno's congestion window, 60 clients. Deep
// congestion: most streams make the same congestion-control decision at
// the same time (synchronized halving / timeouts), inducing the wild
// aggregate fluctuations behind Fig 2's c.o.v. spike.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  const auto r = run_cwnd_figure(
      "Figure 9 — TCP Reno congestion windows, 60 clients",
      "heavy congestion: window decreases are strongly synchronized "
      "across streams (dependency between congestion-control decisions)",
      Transport::kReno, 60);

  // Re-run tracing *every* client to quantify synchronization.
  Scenario sc = paper_base();
  sc.transport = Transport::kReno;
  sc.num_clients = 60;
  ExperimentOptions opts;
  for (int i = 0; i < sc.num_clients; ++i) opts.trace_clients.push_back(i);
  const auto rall = run_experiment(sc, opts);

  const double sync60 =
      max_sync_fraction(rall.cwnd_traces, 0.1, 1.0, sc.duration);

  // Compare against a light-load run where decreases are rare/uncoupled.
  Scenario sc20 = sc;
  sc20.num_clients = 20;
  ExperimentOptions opts20;
  for (int i = 0; i < 20; ++i) opts20.trace_clients.push_back(i);
  const auto r20 = run_experiment(sc20, opts20);
  const double sync20 =
      max_sync_fraction(r20.cwnd_traces, 0.1, 1.0, sc20.duration);

  std::cout << "\nmax fraction of flows cutting cwnd within one 0.1 s bin: "
            << fmt(sync60, 3) << " at N=60 vs " << fmt(sync20, 3)
            << " at N=20\n\n";
  verdict(sync60 > 0.25,
          "a large fraction of the 60 streams cut their windows together");
  verdict(sync60 > sync20,
          "synchronization grows with congestion (N=60 vs N=20)");
  verdict(r.timeouts > 0, "timeouts contribute to the synchronized resets");
  return 0;
}
