// Figure 5: evolution of TCP Reno's congestion window, 20 clients.
// The paper's observation: even in the "uncongested" regime, synchronized
// slow-start backlog bursts overflow the 50-packet buffer, so losses occur
// (and nearly all of them during slow start, when windows grow fastest).
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  const auto r = run_cwnd_figure(
      "Figure 5 — TCP Reno congestion windows, 20 clients",
      "losses occur despite ~52% average load; bursts of ~17 packets from "
      "a few streams overflow the B=50 gateway buffer during slow start",
      Transport::kReno, 20);

  std::cout << '\n';
  verdict(r.gw_drops > 0,
          "drops occur at 20 clients although mean utilization is ~52%");
  verdict(r.loss_pct < 2.0,
          "loss stays mild (congestion is intermittent, not sustained)");

  // Windows must actually exercise the slow-start range the paper plots
  // (values up to ~17-20 packets).
  double w_max = 0.0;
  for (const auto& t : r.cwnd_traces) {
    for (const auto& [at, v] : t.points()) w_max = std::max(w_max, v);
  }
  verdict(w_max >= 15.0, "traced windows reach the 15-20 packet range");
  return 0;
}
