// Figure 12: evolution of TCP Vegas's congestion window, 60 clients.
// Even under heavy congestion, Vegas's per-RTT +-1 adjustment avoids the
// synchronized multiplicative cuts that dominate Reno's Fig 9, and shares
// bandwidth more fairly.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  const auto r = run_cwnd_figure(
      "Figure 12 — TCP Vegas congestion windows, 60 clients",
      "windows stay small and stable; Vegas shares bandwidth fairly and "
      "avoids Reno's synchronized window collapses",
      Transport::kVegas, 60);

  // Quantify synchronization across *all* flows, like the Fig 9 bench.
  Scenario sc = paper_base();
  sc.num_clients = 60;
  sc.transport = Transport::kVegas;
  ExperimentOptions opts;
  for (int i = 0; i < sc.num_clients; ++i) opts.trace_clients.push_back(i);
  const auto vall = run_experiment(sc, opts);
  const double vsync =
      max_sync_fraction(vall.cwnd_traces, 0.1, 1.0, sc.duration);

  Scenario rc = sc;
  rc.transport = Transport::kReno;
  const auto rall = run_experiment(rc, opts);
  const double rsync =
      max_sync_fraction(rall.cwnd_traces, 0.1, 1.0, rc.duration);

  std::cout << "\nmax synchronized-cut fraction at N=60: Vegas "
            << fmt(vsync, 3) << " vs Reno " << fmt(rsync, 3) << "\n"
            << "fairness: Vegas " << fmt(vall.fairness, 4) << " vs Reno "
            << fmt(rall.fairness, 4) << "\n\n";
  verdict(vsync < rsync,
          "Vegas's window cuts are less synchronized than Reno's");
  verdict(vall.fairness >= rall.fairness - 0.005,
          "Vegas shares the bottleneck at least as fairly as Reno");
  verdict(vall.cov < rall.cov, "Vegas aggregate stays smoother at N=60");
  return 0;
}
