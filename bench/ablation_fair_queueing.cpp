// Ablation: per-flow scheduling at the gateway. The paper's introduction
// asks "how traffic should be scheduled"; its analysis blames the shared
// FIFO tail for coupling the streams' fates. Two experiments:
//
//  1. Homogeneous Poisson clients (the paper's workload): with every
//     per-flow queue ~1 packet deep, DRR and FIFO behave alike — the
//     coupling there comes from the shared *capacity*, not the scheduler.
//  2. One greedy bulk flow among Poisson clients: FIFO lets the hog fill
//     the shared buffer and push drops onto everyone; DRR's longest-queue
//     drop confines the loss to the hog and protects the light flows.
#include <iostream>
#include <memory>

#include "bench/common.hpp"
#include "src/app/bulk_source.hpp"
#include "src/core/dumbbell.hpp"
#include "src/net/flow_monitor.hpp"

namespace {

using namespace burst;

struct HogResult {
  double light_loss_frac = 0.0;  // aggregate loss of the Poisson flows
  double hog_loss_frac = 0.0;    // loss of the greedy flow
  double hog_share = 0.0;        // hog's share of delivered packets
  std::uint64_t delivered = 0;
};

HogResult run_hog(GatewayQueue q, Time duration) {
  Scenario sc = bench::paper_base();
  sc.transport = Transport::kReno;
  sc.gateway = q;
  sc.num_clients = 42;
  sc.duration = duration;

  Simulator sim(sc.seed);
  Dumbbell net(sim, sc);
  FlowMonitor monitor(net.bottleneck_queue(), 0.002);
  // Client 0 becomes a greedy bulk transfer; the rest stay Poisson.
  BulkSource hog(sim, net.sender(0), 0);
  hog.start();
  for (int i = 1; i < sc.num_clients; ++i) net.source(i).start();
  sim.run(sc.duration);

  HogResult out;
  std::uint64_t light_arr = 0, light_drop = 0;
  const auto& flow_table = monitor.flow_table();
  for (std::size_t flow = 0; flow < flow_table.size(); ++flow) {
    const FlowMonitor::FlowCounters& c = flow_table[flow];
    if (flow == 0) {
      out.hog_loss_frac = c.arrivals == 0
                              ? 0.0
                              : static_cast<double>(c.drops) /
                                    static_cast<double>(c.arrivals);
    } else {
      light_arr += c.arrivals;
      light_drop += c.drops;
    }
  }
  out.light_loss_frac =
      light_arr == 0 ? 0.0
                     : static_cast<double>(light_drop) /
                           static_cast<double>(light_arr);
  out.delivered = net.total_delivered();
  out.hog_share = static_cast<double>(net.tcp_sink(0)->rcv_nxt()) /
                  static_cast<double>(std::max<std::uint64_t>(1, out.delivered));
  return out;
}

}  // namespace

int main() {
  using namespace burst;
  using namespace burst::bench;

  banner("Ablation — DRR fair queueing vs FIFO at the gateway",
         "per-flow scheduling isolates flows: a greedy hog cannot push its "
         "losses (or steal capacity) from the Poisson clients");

  // Part 1: homogeneous workload (the paper's own scenario).
  std::cout << "homogeneous Poisson clients (N=42):\n";
  std::vector<std::vector<std::string>> rows;
  std::uint64_t fifo_thr = 0, drr_thr = 0;
  for (GatewayQueue q : {GatewayQueue::kDropTail, GatewayQueue::kDrr}) {
    Scenario sc = paper_base();
    sc.num_clients = 42;
    sc.transport = Transport::kReno;
    sc.gateway = q;
    const auto r = run_experiment(sc);
    rows.push_back({to_string(q), std::to_string(r.delivered),
                    fmt(r.loss_pct, 2), std::to_string(r.timeouts),
                    fmt(r.cov, 4), fmt(r.fairness, 4)});
    (q == GatewayQueue::kDropTail ? fifo_thr : drr_thr) = r.delivered;
  }
  print_table(std::cout,
              {"gateway", "delivered", "loss%", "timeouts", "cov", "fairness"},
              rows);

  // Part 2: one greedy hog among the Poisson clients.
  std::cout << "\none greedy bulk flow + 41 Poisson clients:\n";
  const Time duration = paper_base().duration;
  const HogResult fifo = run_hog(GatewayQueue::kDropTail, duration);
  const HogResult drr = run_hog(GatewayQueue::kDrr, duration);
  print_table(
      std::cout,
      {"gateway", "light-flow loss", "hog loss", "hog share of goodput"},
      {
          {"FIFO", fmt(100 * fifo.light_loss_frac, 2) + " %",
           fmt(100 * fifo.hog_loss_frac, 2) + " %",
           fmt(100 * fifo.hog_share, 1) + " %"},
          {"DRR", fmt(100 * drr.light_loss_frac, 2) + " %",
           fmt(100 * drr.hog_loss_frac, 2) + " %",
           fmt(100 * drr.hog_share, 1) + " %"},
      });

  std::cout << '\n';
  verdict(drr_thr >= fifo_thr * 85 / 100,
          "with homogeneous flows, DRR costs little goodput");
  verdict(fifo.hog_loss_frac < fifo.light_loss_frac,
          "FIFO *subsidizes* the greedy flow: its loss rate sits below the "
          "light flows' (shared-tail coupling at work)");
  verdict(drr.hog_loss_frac > drr.light_loss_frac,
          "DRR reverses the subsidy: the hog bears its own losses "
          "(longest-queue drop isolation)");
  verdict(drr.hog_share <= fifo.hog_share,
          "DRR caps the hog's share of the bottleneck");
  return 0;
}
