// Ablation: multi-hop (tandem) bottlenecks. What does the traffic look
// like after an upstream bottleneck has already shaped it? A link's
// departure process is paced at its service rate, so the second gateway
// sees smoother arrivals than the first — for UDP *and* for TCP. The
// TCP-induced burstiness the paper measures is therefore an edge
// phenomenon: it hits the first shared queue hardest.
#include <iostream>

#include "bench/common.hpp"
#include "src/core/tandem.hpp"
#include "src/stats/binned_counter.hpp"

namespace {

using namespace burst;

struct HopCovs {
  double hop1 = 0.0;
  double hop2 = 0.0;
  double poisson = 0.0;
  double loss1 = 0.0;
  double loss2 = 0.0;
};

HopCovs run_tandem(Transport t, int n) {
  TandemConfig cfg;
  cfg.base = bench::paper_base();
  cfg.base.transport = t;
  cfg.base.num_clients = n;
  cfg.second_hop_ratio = 0.9;

  Simulator sim(cfg.base.seed);
  Tandem net(sim, cfg);
  BinnedCounter bins1(cfg.base.rtt_prop(), cfg.base.warmup);
  BinnedCounter bins2(cfg.base.rtt_prop(), cfg.base.warmup);
  net.first_queue().taps().add_arrival_listener(
      [&](const Packet& p, Time now) {
        if (p.type == PacketType::kData) bins1.record(now);
      });
  net.second_queue().taps().add_arrival_listener(
      [&](const Packet& p, Time now) {
        if (p.type == PacketType::kData) bins2.record(now);
      });
  net.start_sources();
  sim.run(cfg.base.duration);

  HopCovs out;
  out.hop1 = bins1.stats_until(cfg.base.duration).cov();
  out.hop2 = bins2.stats_until(cfg.base.duration).cov();
  out.poisson = poisson_aggregate_cov(n, 1.0 / cfg.base.mean_interarrival,
                                      cfg.base.rtt_prop());
  out.loss1 = 100.0 * net.first_queue().stats().loss_fraction();
  out.loss2 = 100.0 * net.second_queue().stats().loss_fraction();
  return out;
}

}  // namespace

int main() {
  using namespace burst;
  using namespace burst::bench;

  banner("Ablation — tandem bottlenecks (multi-hop)",
         "does an intermediate gateway launder TCP's burstiness? "
         "Uncontrolled overload (UDP) gets paced away by the first hop; "
         "TCP keeps upstream hops unsaturated, so its modulation travels "
         "end to end");

  std::vector<std::vector<std::string>> rows;
  HopCovs udp{}, reno{};
  const int n = 45;
  for (Transport t : {Transport::kUdp, Transport::kReno, Transport::kVegas}) {
    const auto r = run_tandem(t, n);
    rows.push_back({to_string(t), fmt(r.poisson, 4), fmt(r.hop1, 4),
                    fmt(r.hop2, 4), fmt(r.loss1, 2), fmt(r.loss2, 2)});
    if (t == Transport::kUdp) udp = r;
    if (t == Transport::kReno) reno = r;
  }
  print_table(std::cout,
              {"transport", "Poisson", "cov hop1", "cov hop2", "loss1%",
               "loss2%"},
              rows);

  std::cout << '\n';
  verdict(udp.hop2 < 0.2 * udp.hop1,
          "overloaded UDP is paced into near-CBR by the first hop "
          "(serialization smoothing)");
  verdict(reno.hop2 > 0.8 * reno.hop1,
          "Reno's burstiness survives the first hop almost intact: "
          "congestion control keeps upstream queues empty, so nothing "
          "paces the aggregate before the true bottleneck");
  verdict(reno.hop1 > 1.5 * udp.hop2 && reno.hop1 > 1.5 * reno.poisson,
          "TCP-modulated traffic is far burstier than either the paced "
          "UDP stream or the Poisson reference");
  verdict(reno.loss2 > 0.0,
          "the narrower second hop still takes losses (it is the "
          "long-term rate bottleneck)");
  return 0;
}
