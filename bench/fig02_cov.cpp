// Figure 2: coefficient of variation of the aggregated traffic arriving at
// the gateway, per round-trip-propagation-delay window, vs number of
// clients — for the aggregated Poisson process (analytic), UDP, Reno,
// Reno/RED, Vegas, Vegas/RED and Reno/DelayAck.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  banner("Figure 2 — c.o.v. of the aggregated TCP traffic",
         "UDP tracks Poisson; Reno (and worse, Reno/RED) become far "
         "burstier past saturation (~39 clients); Vegas stays smooth");

  const Scenario base = paper_base();
  const auto ns = fig2_clients();
  const auto series = figure_sweep("fig02_cov", base, ns, paper_protocol_set());

  // Assemble the table with the analytic Poisson column first.
  std::vector<std::string> header{"clients", "Poisson"};
  for (const auto& s : series) header.push_back(s.name);
  std::vector<std::vector<std::string>> rows;
  for (std::size_t p = 0; p < ns.size(); ++p) {
    std::vector<std::string> row{std::to_string(ns[p])};
    row.push_back(fmt(series[0].points[p].result.poisson_cov, 4));
    for (const auto& s : series) row.push_back(fmt(s.points[p].result.cov, 4));
    rows.push_back(std::move(row));
  }
  print_table(std::cout, header, rows);
  maybe_write_sweep_csv("fig02_cov", series,
                        [](const ExperimentResult& r) { return r.cov; });

  // Verdicts on the paper's claims, evaluated on the heavy-congestion tail
  // (N >= 44).
  double udp_dev = 0.0, reno_ratio = 0.0, reno_red_ratio = 0.0,
         vegas_ratio = 0.0, vegas_red_ratio = 0.0;
  int tail = 0;
  for (std::size_t p = 0; p < ns.size(); ++p) {
    if (ns[p] < 44) continue;
    ++tail;
    const double poisson = series[0].points[p].result.poisson_cov;
    auto cov_of = [&](const char* name) -> double {
      for (const auto& s : series) {
        if (s.name == name) return s.points[p].result.cov;
      }
      return 0.0;
    };
    udp_dev += std::abs(cov_of("UDP") - poisson) / poisson;
    reno_ratio += cov_of("Reno") / poisson;
    reno_red_ratio += cov_of("Reno/RED") / poisson;
    vegas_ratio += cov_of("Vegas") / poisson;
    vegas_red_ratio += cov_of("Vegas/RED") / poisson;
  }
  udp_dev /= tail;
  reno_ratio /= tail;
  reno_red_ratio /= tail;
  vegas_ratio /= tail;
  vegas_red_ratio /= tail;

  std::cout << "\nheavy-congestion (N>=44) cov relative to Poisson:\n"
            << "  Reno x" << fmt(reno_ratio, 2) << "  Reno/RED x"
            << fmt(reno_red_ratio, 2) << "  Vegas x" << fmt(vegas_ratio, 2)
            << "  Vegas/RED x" << fmt(vegas_red_ratio, 2) << "  (UDP dev "
            << fmt(100 * udp_dev, 1) << "%)\n\n";

  verdict(udp_dev < 0.15, "UDP c.o.v. tracks the aggregated Poisson curve");
  verdict(reno_ratio > 1.5,
          "Reno modulates traffic to be much burstier under heavy congestion");
  verdict(reno_red_ratio > reno_ratio,
          "Reno/RED is burstier than plain Reno (RED hurts c.o.v.)");
  verdict(vegas_ratio < reno_ratio,
          "Vegas stays much smoother than Reno under heavy congestion");
  verdict(vegas_red_ratio > vegas_ratio,
          "Vegas/RED is burstier than plain Vegas");
  return 0;
}
