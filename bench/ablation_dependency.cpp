// Ablation: quantify the paper's central mechanism — "TCP Reno introduces
// a high level of dependency between TCP streams" — directly, as the mean
// pairwise correlation of the flows' congestion-window time series and as
// the number of flows hit per gateway drop event.
#include <iostream>

#include "bench/common.hpp"
#include "src/core/dumbbell.hpp"
#include "src/net/flow_monitor.hpp"
#include "src/stats/correlation.hpp"

namespace {

using namespace burst;

struct DependencyResult {
  // Mean pairwise Pearson of per-0.1s "this flow cut its window" indicator
  // series. Correlating decrease *events* (not window levels) removes the
  // common slow-start trend that would otherwise dominate.
  double cut_correlation = 0.0;
  double mean_flows_hit = 0.0;  // per gateway drop event
};

DependencyResult measure(Transport transport, int n, Time duration) {
  Scenario sc = bench::paper_base();
  sc.transport = transport;
  sc.num_clients = n;
  sc.duration = duration;

  ExperimentOptions opts;
  for (int i = 0; i < n; ++i) opts.trace_clients.push_back(i);
  opts.cwnd_sample_period = 0.1;

  Simulator sim(sc.seed);
  Dumbbell net(sim, sc);
  FlowMonitor monitor(net.bottleneck_queue(), /*event_gap=*/0.002);

  // Run via the library pieces directly so the monitor sees this run.
  std::vector<TraceSeries> traces;
  traces.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    traces.emplace_back("c" + std::to_string(i));
    net.tcp_sender(i)->set_cwnd_trace(&traces.back());
  }
  net.start_sources();
  sim.run(sc.duration);

  // Per-flow indicator series: did the window decrease inside this 0.1 s
  // bin? Synchronized congestion decisions show up as correlated spikes.
  const double bin = 0.1;
  const auto n_bins = static_cast<std::size_t>((sc.duration - 1.0) / bin);
  std::vector<std::vector<double>> cuts(
      static_cast<std::size_t>(n), std::vector<double>(n_bins, 0.0));
  for (int f = 0; f < n; ++f) {
    const auto& pts = traces[static_cast<std::size_t>(f)].points();
    for (std::size_t i = 1; i < pts.size(); ++i) {
      if (pts[i].first < 1.0 || pts[i].second >= pts[i - 1].second) continue;
      const auto b = static_cast<std::size_t>((pts[i].first - 1.0) / bin);
      if (b < n_bins) cuts[static_cast<std::size_t>(f)][b] = 1.0;
    }
  }

  DependencyResult out;
  out.cut_correlation = mean_pairwise_correlation(cuts);
  out.mean_flows_hit = monitor.mean_flows_hit();
  return out;
}

}  // namespace

int main() {
  using namespace burst;
  using namespace burst::bench;

  banner("Ablation — dependency between TCP streams",
         "Reno couples the streams (synchronized decisions); Vegas does "
         "not; the coupling grows with congestion");

  const Time duration = paper_base().duration;
  std::vector<std::vector<std::string>> rows;
  DependencyResult reno20{}, reno55{}, vegas55{};
  for (const auto& [name, t, n] :
       std::vector<std::tuple<std::string, Transport, int>>{
           {"Reno N=20", Transport::kReno, 20},
           {"Reno N=55", Transport::kReno, 55},
           {"Vegas N=55", Transport::kVegas, 55}}) {
    const auto r = measure(t, n, duration);
    rows.push_back(
        {name, fmt(r.cut_correlation, 3), fmt(r.mean_flows_hit, 2)});
    if (name == "Reno N=20") reno20 = r;
    if (name == "Reno N=55") reno55 = r;
    if (name == "Vegas N=55") vegas55 = r;
  }
  print_table(
      std::cout,
      {"configuration", "window-cut correlation", "flows per drop event"},
      rows);

  std::cout << '\n';
  verdict(reno55.cut_correlation > reno20.cut_correlation,
          "Reno's stream coupling grows with congestion");
  verdict(reno55.cut_correlation > vegas55.cut_correlation,
          "Reno couples streams more than Vegas at the same load");
  verdict(reno55.mean_flows_hit > 1.5,
          "congestion events hit multiple Reno flows simultaneously");
  return 0;
}
