// topo_build: cost of the declarative topology pipeline, per stage.
//
// The builder sits on the experiment setup path, so campaigns pay it
// once per point — this bench answers "how much does a .topo scenario
// cost over the hard-coded constructor?" for the dumbbell at N=60:
//
//   parse_n60        parse + validate the dumbbell text (no build)
//   fingerprint_n60  canonical rendering + 128-bit key
//   build_hardcoded  Dumbbell(sim, sc): the legacy constructor (itself a
//                    TopoNet facade since the refactor)
//   build_toponet    TopoNet(sim, spec) from the parsed spec
//
// All stages are deterministic; wall time is best-of 5 over `iters`
// repetitions. Output is a table, not a gated JSON — setup cost is
// dwarfed by simulation (~1e6 events per run) and only needs eyeballs.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/dumbbell.hpp"
#include "src/core/report.hpp"
#include "src/sim/simulator.hpp"
#include "src/topo/builder.hpp"
#include "src/topo/parser.hpp"

namespace {

using namespace burst;

constexpr const char* kDumbbellN60 = R"(scenario dumbbell_n60
set clients 60
node client count $clients
node gateway
node server
link gateway server rate $bottleneck_bw delay $bottleneck_delay queue droptail
link server gateway rate $bottleneck_bw delay $bottleneck_delay
link client gateway rate $client_bw delay $client_delay
link gateway client rate $client_bw delay $client_delay
flow client server
measure gateway server
)";

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
double best_of(int repeats, int iters, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const double t0 = now_s();
    for (int i = 0; i < iters; ++i) fn();
    best = std::min(best, (now_s() - t0) / iters);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  int iters = 200;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") iters = 20;
  }

  TopoError err;
  const auto spec = parse_topo(kDumbbellN60, "dumbbell_n60", &err);
  if (!spec) {
    std::cerr << "topo_build: " << err.render("<builtin>") << "\n";
    return 1;
  }
  Scenario sc = spec->scenario;

  const double parse_s = best_of(5, iters, [&] {
    TopoError e;
    auto s = parse_topo(kDumbbellN60, "dumbbell_n60", &e);
    if (!s) std::abort();
  });
  const double key_s =
      best_of(5, iters, [&] { (void)topo_key(*spec); });
  const double hard_s = best_of(5, iters, [&] {
    Simulator sim(sc.seed);
    Dumbbell net(sim, sc);
    (void)net;
  });
  const double topo_s = best_of(5, iters, [&] {
    Simulator sim(sc.seed);
    TopoNet net(sim, *spec);
    (void)net;
  });

  print_table(std::cout, {"stage", "us per call"},
              {
                  {"parse_n60", fmt(parse_s * 1e6, 1)},
                  {"fingerprint_n60", fmt(key_s * 1e6, 1)},
                  {"build_hardcoded", fmt(hard_s * 1e6, 1)},
                  {"build_toponet", fmt(topo_s * 1e6, 1)},
              });
  return 0;
}
