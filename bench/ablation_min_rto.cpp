// Ablation: retransmit-timer coarseness. The paper attributes part of
// Reno's burstiness to drastic window resets after timeouts; a coarser
// minimum RTO means longer silences followed by slow-start bursts.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  banner("Ablation — minimum RTO (timer coarseness)",
         "coarser timers => longer post-timeout silences => burstier "
         "aggregate and lower goodput for Reno");

  const int n = 50;
  std::vector<std::vector<std::string>> rows;
  double cov_fine = 0.0, cov_coarse = 0.0;
  std::uint64_t thr_fine = 0, thr_coarse = 0;
  for (double min_rto : {0.2, 0.5, 1.0, 2.0}) {
    Scenario sc = paper_base();
    sc.num_clients = n;
    sc.transport = Transport::kReno;
    sc.rto.min_rto = min_rto;
    const auto r = run_experiment(sc);
    rows.push_back({fmt(min_rto, 1) + " s", fmt(r.cov, 4),
                    std::to_string(r.delivered), fmt(r.loss_pct, 2),
                    std::to_string(r.timeouts)});
    if (min_rto == 0.2) {
      cov_fine = r.cov;
      thr_fine = r.delivered;
    }
    if (min_rto == 2.0) {
      cov_coarse = r.cov;
      thr_coarse = r.delivered;
    }
  }
  print_table(std::cout, {"min RTO", "cov", "delivered", "loss%", "timeouts"},
              rows);

  std::cout << '\n';
  verdict(cov_coarse > cov_fine,
          "a 2 s minimum RTO makes the aggregate burstier than 0.2 s");
  verdict(thr_coarse < thr_fine,
          "a 2 s minimum RTO costs goodput vs 0.2 s");
  return 0;
}
