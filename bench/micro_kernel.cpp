// Google-benchmark micro suite for the simulation substrate: event
// scheduler, queues, RED arithmetic, and whole-simulation event rates.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/core/dumbbell.hpp"
#include "src/core/experiment.hpp"
#include "src/net/drop_tail_queue.hpp"
#include "src/net/red_queue.hpp"
#include "src/sim/simulator.hpp"

namespace {

using namespace burst;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler s;
    for (int i = 0; i < batch; ++i) {
      s.schedule_at(static_cast<Time>(i % 97), [] {});
    }
    while (!s.empty()) s.take_next().fn();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1024)->Arg(16384);

void BM_SimulatorTimerChain(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int remaining = 100000;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.schedule(0.001, tick);
    };
    sim.schedule(0.001, tick);
    sim.run();
    benchmark::DoNotOptimize(sim.events_run());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SimulatorTimerChain);

void BM_DropTailEnqueueDequeue(benchmark::State& state) {
  DropTailQueue q(64);
  Packet p;
  p.size_bytes = 1040;
  for (auto _ : state) {
    q.enqueue(p, 0.0);
    benchmark::DoNotOptimize(q.dequeue(0.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DropTailEnqueueDequeue);

void BM_RedEnqueueDequeue(benchmark::State& state) {
  RedConfig cfg;
  RedQueue q(cfg, Random(1));
  Packet p;
  p.size_bytes = 1040;
  Time t = 0.0;
  for (auto _ : state) {
    t += 1e-4;
    q.enqueue(p, t);
    benchmark::DoNotOptimize(q.dequeue(t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedEnqueueDequeue);

void BM_EndToEndSimulation(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    Scenario sc = Scenario::paper_default();
    sc.num_clients = clients;
    sc.duration = 2.0;
    Simulator sim(sc.seed);
    Dumbbell net(sim, sc);
    net.start_sources();
    sim.run(sc.duration);
    events += sim.events_run();
    benchmark::DoNotOptimize(net.total_delivered());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_EndToEndSimulation)->Arg(10)->Arg(40)->Arg(60);

}  // namespace

BENCHMARK_MAIN();
