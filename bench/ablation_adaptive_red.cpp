// Ablation: self-configuring RED (the paper's reference [5], by the same
// authors). Static RED's damage depends on max_p being wrong for the
// load; adapting max_p keeps the average queue inside the thresholds.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  banner("Ablation — self-configuring (adaptive) RED",
         "adapting max_p to the load keeps avg queue between the "
         "thresholds and softens static RED's worst cases");

  std::vector<std::vector<std::string>> rows;
  std::uint64_t static_thr_hi = 0, adaptive_thr_hi = 0;
  for (int n : {35, 50, 60}) {
    for (bool adaptive : {false, true}) {
      Scenario sc = paper_base();
      sc.num_clients = n;
      sc.transport = Transport::kReno;
      sc.gateway = GatewayQueue::kRed;
      sc.adaptive_red = adaptive;
      const auto r = run_experiment(sc);
      rows.push_back({std::to_string(n), adaptive ? "adaptive" : "static",
                      fmt(r.cov, 4), std::to_string(r.delivered),
                      fmt(r.loss_pct, 2), std::to_string(r.timeouts)});
      if (n == 60) (adaptive ? adaptive_thr_hi : static_thr_hi) = r.delivered;
    }
  }
  print_table(std::cout,
              {"clients", "RED", "cov", "delivered", "loss%", "timeouts"},
              rows);

  std::cout << '\n';
  verdict(adaptive_thr_hi >= static_thr_hi,
          "adaptive RED's goodput under heavy congestion is at least "
          "static RED's");
  return 0;
}
