// Figure 3: total number of packets successfully transmitted vs number of
// clients, for Reno, Reno/RED, Vegas, Vegas/RED and Reno/DelayAck.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  banner("Figure 3 — Throughput of the aggregated TCP traffic",
         "throughput plateaus at the bottleneck; plain variants beat their "
         "RED counterparts; Vegas >= Reno under heavy load");

  const Scenario base = paper_base();
  const auto ns = fig34_clients();
  const auto series = figure_sweep("fig03_throughput", base, ns, paper_protocol_set(false));

  print_metric_vs_clients(
      std::cout, series, "total packets successfully transmitted",
      [](const ExperimentResult& r) { return static_cast<double>(r.delivered); },
      0);
  maybe_write_sweep_csv("fig03_throughput", series,
                        [](const ExperimentResult& r) {
                          return static_cast<double>(r.delivered);
                        });

  // Capacity reference line.
  const double cap = base.bottleneck_pps() * base.duration;
  std::cout << "\nbottleneck capacity over the run: " << fmt(cap, 0)
            << " packets\n\n";

  auto tail_mean = [&](const char* name) {
    double sum = 0.0;
    int cnt = 0;
    for (const auto& s : series) {
      if (s.name != name) continue;
      for (const auto& p : s.points) {
        if (p.num_clients < 45) continue;
        sum += static_cast<double>(p.result.delivered);
        ++cnt;
      }
    }
    return sum / cnt;
  };
  const double reno = tail_mean("Reno");
  const double reno_red = tail_mean("Reno/RED");
  const double vegas = tail_mean("Vegas");
  const double vegas_red = tail_mean("Vegas/RED");

  verdict(reno > reno_red, "Reno outperforms Reno/RED in throughput");
  verdict(vegas > vegas_red, "Vegas outperforms Vegas/RED in throughput");
  verdict(vegas >= 0.95 * reno, "Vegas at least matches Reno's throughput");
  verdict(reno < 1.01 * cap && vegas < 1.01 * cap,
          "throughput is bounded by the bottleneck capacity (plateau)");
  return 0;
}
