// packet_path: the per-packet hot-path performance probe.
//
// Where bench/sched_events measures the scheduler in isolation, this
// bench measures what a simulation actually buys per packet: the full
// link hop (enqueue -> transmit -> deliver), the retransmit-timer rearm
// pattern (one Timer::schedule per ACK), and the fig02 Reno/RED
// heavy-congestion point end to end. Results go to a JSON file (default
// BENCH_packet_path.json); scripts/check_packet_path.py gates CI on the
// deterministic counters (events per hop) and on wall time normalized
// by the calibration row, so the gate is portable across machines.
//
// Rows:
//   calib_sched_pop_d64   pure scheduler schedule+pop cycle (calibration;
//                         identical workload to sched_events, untouched by
//                         link/timer changes — used to normalize wall time)
//   link_hop_saturated    one link with a standing queue backlog (the data
//                         direction of a congested dumbbell)
//   link_hop_idle         one packet at a time on an idle link (the ACK
//                         direction: queue empty at every send)
//   timer_rearm           Timer::schedule with an always-advancing deadline
//                         (the per-ACK RTO restart pattern)
//   timer_rearm_pending100000    the same pattern with 10^5 idle kLazy
//                         timers armed far-future (parked in the timing
//                         wheel; the rearm cost must not grow with them)
//   fig02_n60_reno_red    full N=60 Reno/RED experiment (the paper's
//                         heavy-congestion regime), ns per executed event
//   fig02_n60_reno_red_lp2    the same experiment on the conservative
//                         parallel engine with 2 LPs; counters must match
//                         the sequential row exactly (see check_parallel.py)
//   fig02_n60_reno_red_traced    same run with a TraceSink attached to
//                         every tap (the observability overhead row; the
//                         CI gate keeps its wall ratio honest)
//   fig02_n60_reno_red_profiled  same run with a Profiler installed;
//                         reports per-phase wall shares (dispatch /
//                         transport / queue). Ungated: the two clock
//                         reads per scope are the quantity under test
//
// Modes:
//   (default)  full runs: ~4e6 hops / 10 s simulated experiment
//   --smoke    CI-sized: ~4e5 hops, 2 s experiment
//
// Every workload is deterministic; wall times are best-of --repeat
// (default 3).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/experiment.hpp"
#include "src/net/drop_tail_queue.hpp"
#include "src/net/link.hpp"
#include "src/obs/profile.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/scheduler.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/timer.hpp"

namespace {

using namespace burst;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct BenchRow {
  std::string name;
  std::uint64_t ops = 0;   // packet hops, schedule calls, or sim events
  double wall_s = 0.0;     // best-of-repeat wall time
  double ns_per_op = 0.0;
  double ops_per_sec = 0.0;
  // Deterministic extras (negative / zero = not applicable for this row).
  double events_per_hop = -1.0;  // scheduler events per packet hop
  std::uint64_t sim_events = 0;  // events executed (end-to-end rows)
  std::uint64_t delivered = 0;   // packets delivered (end-to-end rows)
  std::uint64_t trace_records = 0;  // TraceSink records (traced row)
  bool profiled = false;            // phase_s below is meaningful
  std::array<double, kProfilePhases> phase_s{};  // per-phase self time
};

BenchRow finish(std::string name, std::uint64_t ops, double best_wall) {
  BenchRow r;
  r.name = std::move(name);
  r.ops = ops;
  r.wall_s = best_wall;
  r.ns_per_op = best_wall * 1e9 / static_cast<double>(ops);
  r.ops_per_sec = static_cast<double>(ops) / best_wall;
  return r;
}

// Cheap deterministic jitter (splitmix64), independent of src/sim/random.
struct Mix {
  std::uint64_t s;
  double next() {  // in [0, 1)
    s += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }
};

// Calibration: the steady-state schedule+pop cycle at heap depth 64,
// byte-for-byte the workload of sched_events' schedule_pop_d64. Link and
// timer changes do not touch this loop, so the ratio of any other row to
// this one is comparable across machines.
BenchRow bench_calibration(std::uint64_t ops, int repeat) {
  double best = 1e99;
  for (int rep = 0; rep < repeat; ++rep) {
    Scheduler s;
    Mix mix{42};
    Time now = 0.0;
    for (int i = 0; i < 64; ++i) s.schedule_at(mix.next(), [] {});
    const double t0 = now_s();
    for (std::uint64_t i = 0; i < ops; ++i) {
      auto ready = s.take_next();
      now = ready.at;
      s.schedule_at(now + mix.next(), [] {});
    }
    best = std::min(best, now_s() - t0);
    while (!s.empty()) s.take_next();
  }
  return finish("calib_sched_pop_d64", ops, best);
}

Packet data_packet(std::int64_t seq) {
  Packet p;
  p.type = PacketType::kData;
  p.size_bytes = 1040;  // wire size of a paper data packet
  p.seq = seq;
  return p;
}

// One link, kept saturated: a standing backlog of 50 packets, and every
// delivery is replaced by a fresh send. This is the bottleneck/data
// direction of a congested dumbbell, where the queue is never empty when
// a transmission completes.
BenchRow bench_link_saturated(std::uint64_t hops, int repeat) {
  double best = 1e99;
  std::uint64_t events = 0;
  for (int rep = 0; rep < repeat; ++rep) {
    Simulator sim;
    SimplexLink link(sim, std::make_unique<DropTailQueue>(100000), 32e6,
                     ms(20));
    std::uint64_t done = 0;
    std::int64_t next_seq = 0;
    link.set_receiver([&](const Packet&) {
      if (++done >= hops) {
        sim.stop();
        return;
      }
      link.send(data_packet(next_seq++));
    });
    for (int i = 0; i < 50; ++i) link.send(data_packet(next_seq++));
    const double t0 = now_s();
    sim.run();
    best = std::min(best, now_s() - t0);
    events = sim.events_run();
  }
  BenchRow r = finish("link_hop_saturated", hops, best);
  r.events_per_hop = static_cast<double>(events) / static_cast<double>(hops);
  return r;
}

// One packet at a time on an idle link: every send finds the queue empty
// and the transmitter free (the delivery arrives prop_delay after the
// transmitter went idle). This is the ACK direction of the dumbbell.
BenchRow bench_link_idle(std::uint64_t hops, int repeat) {
  double best = 1e99;
  std::uint64_t events = 0;
  for (int rep = 0; rep < repeat; ++rep) {
    Simulator sim;
    SimplexLink link(sim, std::make_unique<DropTailQueue>(100000), 32e6,
                     ms(20));
    std::uint64_t done = 0;
    std::int64_t next_seq = 0;
    link.set_receiver([&](const Packet&) {
      if (++done >= hops) {
        sim.stop();
        return;
      }
      link.send(data_packet(next_seq++));
    });
    link.send(data_packet(next_seq++));
    const double t0 = now_s();
    sim.run();
    best = std::min(best, now_s() - t0);
    events = sim.events_run();
  }
  BenchRow r = finish("link_hop_idle", hops, best);
  r.events_per_hop = static_cast<double>(events) / static_cast<double>(hops);
  return r;
}

// The retransmit-timer pattern: one Timer::schedule per simulated ACK,
// with a deadline that always advances (srtt-scale RTO, ms-scale ACK
// clock). The timer itself almost never fires — the cost under test is
// the rearm. Uses the same timer mode as TcpSender's RTO timer.
BenchRow bench_timer_rearm(std::uint64_t ops, int repeat) {
  double best = 1e99;
  for (int rep = 0; rep < repeat; ++rep) {
    Simulator sim;
    Timer rto(sim, [] {}, Timer::Mode::kLazy);
    std::uint64_t remaining = ops;
    std::function<void()> drive = [&] {
      rto.schedule(0.25);
      if (--remaining > 0) sim.schedule(0.001, [&] { drive(); });
    };
    sim.schedule(0.001, [&] { drive(); });
    const double t0 = now_s();
    sim.run();
    best = std::min(best, now_s() - t0);
  }
  return finish("timer_rearm", ops, best);
}

// The rearm pattern with a mean-field-sized population in the background:
// `background` idle flows each keep a kLazy RTO armed at a far deadline.
// Those park in the timing wheel's O(1) buckets, so the driving flow's
// rearm cost must stay at the timer_rearm row's level instead of growing
// with log(background) — this row is what "heap depth tracks the horizon,
// not the flow count" looks like end to end.
BenchRow bench_timer_rearm_pending(std::uint64_t ops, std::size_t background,
                                   int repeat) {
  double best = 1e99;
  // The drive chain spans `ops` milliseconds of simulated time; run just
  // past it so every mode executes exactly `ops` drive steps (a fixed
  // horizon shorter than the chain would silently truncate the count the
  // ns/op division assumes), and park the idle population strictly
  // beyond the horizon so it stays armed for the whole measurement.
  const Time horizon = 0.001 * static_cast<double>(ops) + 1.0;
  for (int rep = 0; rep < repeat; ++rep) {
    Simulator sim;
    Mix mix{5};
    std::vector<std::unique_ptr<Timer>> idle;
    idle.reserve(background);
    for (std::size_t i = 0; i < background; ++i) {
      idle.push_back(
          std::make_unique<Timer>(sim, [] {}, Timer::Mode::kLazy));
      idle.back()->schedule(horizon + 3600.0 + 3600.0 * mix.next());
    }
    Timer rto(sim, [] {}, Timer::Mode::kLazy);
    std::uint64_t remaining = ops;
    std::function<void()> drive = [&] {
      rto.schedule(0.25);
      if (--remaining > 0) sim.schedule(0.001, [&] { drive(); });
    };
    sim.schedule(0.001, [&] { drive(); });
    const double t0 = now_s();
    sim.run(horizon);
    best = std::min(best, now_s() - t0);
  }
  return finish("timer_rearm_pending" + std::to_string(background), ops,
                best);
}

// The paper's heavy-congestion point: N=60 clients (past the ~39-client
// saturation knee of Fig 2), Reno senders, RED gateway.
BenchRow bench_fig02_point(double duration, int repeat) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 60;
  sc.transport = Transport::kReno;
  sc.gateway = GatewayQueue::kRed;
  sc.duration = duration;
  double best = 1e99;
  std::uint64_t events = 0, delivered = 0;
  for (int rep = 0; rep < repeat; ++rep) {
    const double t0 = now_s();
    const ExperimentResult r = run_experiment(sc);
    best = std::min(best, now_s() - t0);
    events = r.sim_events ? r.sim_events : 1;
    delivered = r.delivered;
  }
  BenchRow r = finish("fig02_n60_reno_red", events, best);
  r.sim_events = events;
  r.delivered = delivered;
  return r;
}

// The same heavy-congestion point with a TraceSink attached to every tap:
// what full observability costs per event. The deterministic counters
// (sim_events, delivered) must match the untraced row exactly — tracing
// adds no scheduler events and consumes no RNG.
BenchRow bench_fig02_traced(double duration, int repeat) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 60;
  sc.transport = Transport::kReno;
  sc.gateway = GatewayQueue::kRed;
  sc.duration = duration;
  double best = 1e99;
  std::uint64_t events = 0, delivered = 0, records = 0;
  for (int rep = 0; rep < repeat; ++rep) {
    TraceSink sink;  // ring allocated outside the timed region
    ExperimentOptions opts;
    opts.trace = &sink;
    const double t0 = now_s();
    const ExperimentResult r = run_experiment(sc, opts);
    best = std::min(best, now_s() - t0);
    events = r.sim_events ? r.sim_events : 1;
    delivered = r.delivered;
    records = sink.emitted();
  }
  BenchRow r = finish("fig02_n60_reno_red_traced", events, best);
  r.sim_events = events;
  r.delivered = delivered;
  r.trace_records = records;
  return r;
}

// The same heavy-congestion point on the conservative parallel engine
// with 2 LPs (clients | gateway+server). The deterministic counters must
// match the untraced row exactly: every cross-LP delivery event replaces
// the fused local one 1:1. The wall ratio against the sequential row is
// the engine's speedup (≥ 1x only with ≥ 2 hardware threads — on one
// core the windows serialize and the barriers are pure overhead, which
// is why scripts/check_parallel.py normalizes by the calibration row and
// gates speedup only on multicore hardware).
BenchRow bench_fig02_lp2(double duration, int repeat) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 60;
  sc.transport = Transport::kReno;
  sc.gateway = GatewayQueue::kRed;
  sc.duration = duration;
  ExperimentOptions opts;
  opts.lp_shards = 2;
  double best = 1e99;
  std::uint64_t events = 0, delivered = 0;
  for (int rep = 0; rep < repeat; ++rep) {
    const double t0 = now_s();
    const ExperimentResult r = run_experiment(sc, opts);
    best = std::min(best, now_s() - t0);
    events = r.sim_events ? r.sim_events : 1;
    delivered = r.delivered;
  }
  BenchRow r = finish("fig02_n60_reno_red_lp2", events, best);
  r.sim_events = events;
  r.delivered = delivered;
  return r;
}

// The traced run on 2 LPs: each LP records into its own ring, merged at
// the end of the run (TraceSink::merge_from). Event tracing still adds
// no scheduler events and consumes no RNG, so (sim_events, delivered)
// must match the untraced lp2 row — and trace_records must match the
// sequential traced row's, since the merged view is byte-identical to
// the lp=1 trace (scripts/check_parallel.py enforces both pairings).
BenchRow bench_fig02_lp2_traced(double duration, int repeat) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 60;
  sc.transport = Transport::kReno;
  sc.gateway = GatewayQueue::kRed;
  sc.duration = duration;
  double best = 1e99;
  std::uint64_t events = 0, delivered = 0, records = 0;
  for (int rep = 0; rep < repeat; ++rep) {
    TraceSink sink;  // merge target; per-LP rings allocated inside the run
    ExperimentOptions opts;
    opts.trace = &sink;
    opts.lp_shards = 2;
    const double t0 = now_s();
    const ExperimentResult r = run_experiment(sc, opts);
    best = std::min(best, now_s() - t0);
    events = r.sim_events ? r.sim_events : 1;
    delivered = r.delivered;
    records = sink.emitted();
  }
  BenchRow r = finish("fig02_n60_reno_red_lp2_traced", events, best);
  r.sim_events = events;
  r.delivered = delivered;
  r.trace_records = records;
  return r;
}

// The same point with a Profiler installed: per-phase wall attribution.
// Ungated — the scope clock reads shift absolute wall time, which is the
// price this row exists to report.
BenchRow bench_fig02_profiled(double duration, int repeat) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 60;
  sc.transport = Transport::kReno;
  sc.gateway = GatewayQueue::kRed;
  sc.duration = duration;
  double best = 1e99;
  std::uint64_t events = 0, delivered = 0;
  Profiler best_prof;
  for (int rep = 0; rep < repeat; ++rep) {
    Profiler prof;
    Profiler* prev = Profiler::install(&prof);
    const double t0 = now_s();
    const ExperimentResult r = run_experiment(sc);
    const double wall = now_s() - t0;
    Profiler::install(prev);
    if (wall < best) {
      best = wall;
      best_prof = prof;
    }
    events = r.sim_events ? r.sim_events : 1;
    delivered = r.delivered;
  }
  BenchRow r = finish("fig02_n60_reno_red_profiled", events, best);
  r.sim_events = events;
  r.delivered = delivered;
  r.profiled = true;
  for (std::size_t ph = 0; ph < kProfilePhases; ++ph) {
    r.phase_s[ph] = best_prof.seconds(static_cast<ProfilePhase>(ph));
  }
  return r;
}

void write_json(const std::string& path, const std::vector<BenchRow>& rows,
                bool smoke) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"bench\": \"packet_path\",\n  \"mode\": \""
      << (smoke ? "smoke" : "full") << "\",\n  \"schema\": 1,\n"
      << "  \"results\": [\n";
  out.precision(6);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"ops\": " << r.ops
        << ", \"wall_s\": " << r.wall_s << ", \"ns_per_op\": " << r.ns_per_op
        << ", \"ops_per_sec\": " << r.ops_per_sec;
    if (r.events_per_hop >= 0.0) {
      out << ", \"events_per_hop\": " << r.events_per_hop;
    }
    if (r.sim_events > 0) {
      out << ", \"sim_events\": " << r.sim_events << ", \"delivered\": "
          << r.delivered;
    }
    if (r.trace_records > 0) {
      out << ", \"trace_records\": " << r.trace_records;
    }
    if (r.profiled) {
      out << ", \"phase_seconds\": {";
      for (std::size_t ph = 0; ph < kProfilePhases; ++ph) {
        out << (ph ? ", " : "") << "\""
            << to_string(static_cast<ProfilePhase>(ph))
            << "\": " << r.phase_s[ph];
      }
      out << "}";
    }
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!out.flush()) {
    std::cerr << "packet_path: failed to write " << path << "\n";
    std::exit(1);
  }
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int repeat = 3;
  std::string out_path = "BENCH_packet_path.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::max(1, std::atoi(arg.c_str() + 9));
    } else {
      std::cerr << "usage: packet_path [--smoke] [--repeat=N] [--out=PATH]\n";
      return 2;
    }
  }

  const std::uint64_t hops = smoke ? 400'000 : 4'000'000;
  const double exp_duration = smoke ? 2.0 : 20.0;  // full = the paper's 20 s

  std::vector<BenchRow> rows;
  rows.push_back(bench_calibration(hops * 2, repeat));
  rows.push_back(bench_link_saturated(hops, repeat));
  rows.push_back(bench_link_idle(hops, repeat));
  rows.push_back(bench_timer_rearm(hops, repeat));
  rows.push_back(bench_timer_rearm_pending(hops, 100'000, repeat));
  rows.push_back(bench_fig02_point(exp_duration, repeat));
  rows.push_back(bench_fig02_lp2(exp_duration, repeat));
  rows.push_back(bench_fig02_traced(exp_duration, repeat));
  rows.push_back(bench_fig02_lp2_traced(exp_duration, repeat));
  rows.push_back(bench_fig02_profiled(exp_duration, repeat));

  for (const BenchRow& r : rows) {
    std::cout << r.name << ": " << r.ns_per_op << " ns/op  ("
              << static_cast<std::uint64_t>(r.ops_per_sec) << " ops/s, wall "
              << r.wall_s << " s";
    if (r.events_per_hop >= 0.0) {
      std::cout << ", " << r.events_per_hop << " events/hop";
    }
    if (r.trace_records > 0) {
      std::cout << ", " << r.trace_records << " trace records";
    }
    std::cout << ")\n";
    if (r.profiled) {
      double total = 0.0;
      for (const double s : r.phase_s) total += s;
      std::cout << "  phases:";
      for (std::size_t ph = 0; ph < kProfilePhases; ++ph) {
        std::cout << " " << to_string(static_cast<ProfilePhase>(ph)) << " "
                  << (total > 0.0 ? 100.0 * r.phase_s[ph] / total : 0.0)
                  << "%";
      }
      std::cout << "\n";
    }
  }
  write_json(out_path, rows, smoke);
  return 0;
}
