// Figure 13: ratio of timeouts to duplicate ACKs vs number of clients.
// Vegas recovers via (fine-grained) duplicate-ACK retransmission and so
// shows a far lower ratio than the Reno family.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  banner("Figure 13 — Ratio of timeouts to duplicate ACKs",
         "Vegas's ratio is very low; Reno variants rely on timeouts far "
         "more (2-3x more timeouts than Vegas)");

  const Scenario base = paper_base();
  const auto ns = fig34_clients();
  const auto series = figure_sweep("fig13_timeout_dupack", base, ns, paper_protocol_set(false));

  print_metric_vs_clients(
      std::cout, series, "timeouts / duplicate ACKs",
      [](const ExperimentResult& r) { return r.timeout_dupack_ratio; }, 4);
  maybe_write_sweep_csv("fig13_timeout_dupack", series,
                        [](const ExperimentResult& r) {
                          return r.timeout_dupack_ratio;
                        });

  std::cout << '\n';
  print_metric_vs_clients(
      std::cout, series, "raw timeout counts",
      [](const ExperimentResult& r) { return static_cast<double>(r.timeouts); },
      0);

  auto tail_mean = [&](const char* name, auto metric) {
    double sum = 0.0;
    int cnt = 0;
    for (const auto& s : series) {
      if (s.name != name) continue;
      for (const auto& p : s.points) {
        if (p.num_clients < 45) continue;
        sum += metric(p.result);
        ++cnt;
      }
    }
    return sum / cnt;
  };
  auto ratio = [](const ExperimentResult& r) { return r.timeout_dupack_ratio; };
  auto touts = [](const ExperimentResult& r) {
    return static_cast<double>(r.timeouts);
  };
  const double reno_ratio = tail_mean("Reno", ratio);
  const double vegas_ratio = tail_mean("Vegas", ratio);
  const double reno_touts = tail_mean("Reno", touts);
  const double vegas_touts = tail_mean("Vegas", touts);

  std::cout << "\nheavy-congestion (N>=45) means: Reno ratio "
            << fmt(reno_ratio, 4) << " / timeouts " << fmt(reno_touts, 0)
            << ";  Vegas ratio " << fmt(vegas_ratio, 4) << " / timeouts "
            << fmt(vegas_touts, 0) << "\n\n";

  verdict(vegas_ratio < reno_ratio,
          "Vegas's timeout/dup-ACK ratio is below Reno's");
  verdict(reno_touts > 1.5 * vegas_touts,
          "Reno suffers substantially more timeouts than Vegas");
  return 0;
}
