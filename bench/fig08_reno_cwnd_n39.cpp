// Figure 8: evolution of TCP Reno's congestion window, 39 clients — just
// past the saturation crossover. The offered load persistently exceeds
// capacity, so windows never stabilize: synchronized decreases continue
// throughout the run and the c.o.v. jumps sharply (Fig 2).
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  const auto r = run_cwnd_figure(
      "Figure 8 — TCP Reno congestion windows, 39 clients",
      "just past saturation: windows never stabilize; congestion-control "
      "decisions across streams become dependent (synchronized)",
      Transport::kReno, 39);

  const Time dur = r.scenario.duration;
  const auto late = decrease_counts(r.cwnd_traces, dur / 2, dur);
  int late_total = 0;
  for (int c : late) late_total += c;

  std::cout << "\nwindow decreases among traced flows in the second half: "
            << late_total << "\n\n";
  verdict(r.scenario.utilization() > 1.0,
          "offered load exceeds capacity at N=39 (saturation crossed)");
  verdict(late_total > 0,
          "losses persist into the second half: windows never stabilize");

  // Contrast with the N=38 run: persistent (not transient) congestion.
  Scenario sc38 = paper_base();
  sc38.transport = Transport::kReno;
  sc38.num_clients = 38;
  const auto r38 = run_experiment(sc38);
  verdict(r.loss_pct >= r38.loss_pct,
          "loss at 39 clients is at least that of 38 clients");
  return 0;
}
