// fig_meanfield: the huge-N mean-field probe.
//
// Sweeps the dumbbell's client count on a log grid with mean-field
// scaling on (meanfield_base = 60: bottleneck bandwidth, gateway buffer
// and RED thresholds all grow with N, so per-flow capacity is constant)
// and measures, per N:
//
//   * the c.o.v. of gateway arrivals per RTT bin — stochastic
//     fluctuations decay like 1/sqrt(N), but the McDonald–Reynier limit
//     itself is a deterministic RED/TCP oscillation, so the c.o.v.
//     saturates at the limit cycle's amplitude (~0.10) instead of
//     vanishing;
//   * the mean RED occupancy seen by arriving packets (PASTA), compared
//     against the closed-form mean-field fixed point
//     (src/stats/meanfield.hpp);
//   * the flow-arena footprint in bytes per flow, reserved under a hard
//     per-flow budget so per-flow state can never silently regrow;
//   * events and wall time, so scripts/check_meanfield.py can gate the
//     perf trajectory (normalized by the calibration row).
//
// Modes:
//   (default)  N in {100, 1000, 10000, 100000}
//   --smoke    CI-sized: N in {100, 1000, 10000}
//
// Per-N rows use fixed simulated durations (identical in both modes) so
// smoke and full runs produce comparable rows. Output: JSON (default
// BENCH_meanfield.json) in the same shape as sched_events/packet_path,
// with per-row "extra" metrics appended.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/flow_monitor.hpp"
#include "src/obs/flight_recorder.hpp"
#include "src/sim/parallel/runtime.hpp"
#include "src/sim/scheduler.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/binned_counter.hpp"
#include "src/stats/meanfield.hpp"
#include "src/topo/builder.hpp"
#include "src/topo/partition.hpp"
#include "src/topo/spec.hpp"
#include "src/transport/flow_arena.hpp"

namespace {

using namespace burst;

// Hard per-flow arena budget (bytes). Sender SoA + sent-at ring + sink
// lanes currently come to ~650 B/flow; the margin covers container
// overhead without leaving room for an accidental per-flow heap object.
constexpr std::size_t kBudgetPerFlowBytes = 2048;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct BenchRow {
  std::string name;
  std::uint64_t ops = 0;  // simulator events (or calibration loop ops)
  double wall_s = 0.0;
  double ns_per_op = 0.0;
  double ops_per_sec = 0.0;
  // Mean-field extras (zero on the calibration row).
  int clients = 0;
  double cov = 0.0;             // c.o.v. of arrivals per RTT bin
  double queue_mean = 0.0;      // PASTA mean queue occupancy (packets)
  double queue_fixed_point = 0.0;  // analytic mean-field x* (packets)
  double drop_frac = 0.0;       // measured gateway drop fraction
  double bytes_per_flow = 0.0;  // arena bytes reserved / N
  // Flight-recorder extras (zero on non-FR rows).
  std::uint64_t fr_samples = 0;  // samples held at the end of the run
  std::uint64_t fr_taken = 0;    // snapshots ever taken (pre-decimation)
  std::uint64_t fr_bytes = 0;    // fixed budget reserved at arm()
};

BenchRow finish(std::string name, std::uint64_t ops, double wall) {
  BenchRow r;
  r.name = std::move(name);
  r.ops = ops;
  r.wall_s = wall;
  r.ns_per_op = wall * 1e9 / static_cast<double>(ops ? ops : 1);
  r.ops_per_sec = static_cast<double>(ops) / (wall > 0 ? wall : 1e-9);
  return r;
}

struct Mix {
  std::uint64_t s;
  double next() {
    s += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }
};

// Calibration: byte-for-byte the schedule_pop_d64 workload from
// sched_events/packet_path, so row/calib ratios cancel machine speed.
BenchRow bench_calibration(std::uint64_t ops, int repeat) {
  double best = 1e99;
  for (int rep = 0; rep < repeat; ++rep) {
    Scheduler s;
    Mix mix{42};
    Time now = 0.0;
    for (int i = 0; i < 64; ++i) s.schedule_at(mix.next(), [] {});
    const double t0 = now_s();
    for (std::uint64_t i = 0; i < ops; ++i) {
      auto ready = s.take_next();
      now = ready.at;
      s.schedule_at(now + mix.next(), [] {});
    }
    best = std::min(best, now_s() - t0);
    while (!s.empty()) s.take_next();
  }
  return finish("calib_sched_pop_d64", ops, best);
}

Scenario meanfield_scenario(int clients, Time duration) {
  Scenario sc = Scenario::paper_default();
  sc.transport = Transport::kReno;
  sc.gateway = GatewayQueue::kRed;
  sc.meanfield_base = 60;
  sc.num_clients = clients;
  sc.duration = duration;
  return sc;
}

/// Simulated seconds per N: big N earns its statistics from population
/// averaging, so the horizon shrinks as the event rate grows.
Time duration_for(int clients) {
  if (clients >= 100000) return 6.0;
  if (clients >= 10000) return 10.0;
  return 20.0;
}

// @p lp_shards > 1 runs the same scenario on the conservative parallel
// engine (clients sharded | gateway | server); the dynamics — cov,
// occupancy, drops, events — must match the sequential row at the same N
// (scripts/check_parallel.py enforces events exactly), only the wall
// clock may differ.
//
// @p flight attaches the fixed-budget flight recorder (DESIGN.md §14.3):
// the huge-N observability story. Sampler events DO change the event
// count (they are real scheduler work), so FR rows are not gated on
// event exactness — check_parallel.py instead holds their wall clock
// within 5% of the matching untraced row and their sample budget fixed.
BenchRow run_meanfield(int clients, int lp_shards = 1, bool flight = false) {
  const Scenario sc = meanfield_scenario(clients, duration_for(clients));

  // The budget knob is the point, not a formality: reserve under a hard
  // per-flow ceiling so any per-flow state growth fails loudly here.
  // Sharded builds split the reservation across per-LP arenas; the sum
  // still has to respect the same per-flow budget.
  FlowArena::set_default_budget_bytes(
      (static_cast<std::size_t>(clients) + 1) * kBudgetPerFlowBytes);

  const TopoSpec spec = make_dumbbell_spec(sc);
  const LpPartition part = make_lp_partition(spec, lp_shards);
  std::unique_ptr<Simulator> seq;
  std::unique_ptr<ParallelRuntime> rt;
  std::unique_ptr<TopoNet> net;
  if (part.shards > 1) {
    rt = std::make_unique<ParallelRuntime>(part.shards, part.lookahead,
                                           sc.seed);
    net = std::make_unique<TopoNet>(*rt, part, spec);
  } else {
    seq = std::make_unique<Simulator>(sc.seed);
    net = std::make_unique<TopoNet>(*seq, spec);
  }
  FlowArena::set_default_budget_bytes(0);

  BinnedCounter bins(sc.rtt_prop(), sc.warmup);
  net->measured_queue().taps().add_arrival_listener(
      [&bins](const Packet& p, Time now) {
        if (p.type == PacketType::kData) bins.record(now);
      });
  FlowMonitor monitor(net->measured_queue());
  monitor.reserve_flows(static_cast<std::size_t>(clients));

  std::unique_ptr<FlightRecorder> fr;
  if (flight) {
    // 1024-sample cap: 128 KiB reserved, exactly the 64-flow ceiling
    // below; the 6 s run then never needs to decimate at the 0.1 s
    // default cadence.
    FlightRecorderOptions fopts;
    fopts.max_samples = 1024;
    fr = std::make_unique<FlightRecorder>(fopts);
    fr->observe_queue(&net->measured_queue());
    if (rt == nullptr) fr->observe_arena(&net->flow_arena());
    fr->arm(rt != nullptr ? rt->sim(0) : *seq, sc.duration);
    // The recorder's whole budget must stay negligible next to the arena
    // it observes — the point of sampling instead of tracing.
    if (fr->bytes_reserved() > kBudgetPerFlowBytes * 64) {
      std::cerr << "fig_meanfield: flight-recorder budget "
                << fr->bytes_reserved() << " B exceeds its ceiling\n";
      std::exit(1);
    }
  }

  net->start_sources();
  const double t0 = now_s();
  if (rt != nullptr) {
    rt->run(sc.duration);
  } else {
    seq->run(sc.duration);
  }
  const double wall = now_s() - t0;
  const std::uint64_t events =
      rt != nullptr ? rt->total_events() : seq->events_run();

  std::string name = "meanfield_n" + std::to_string(clients);
  if (part.shards > 1) name += "_lp" + std::to_string(part.shards);
  if (flight) name += "_fr";
  BenchRow r = finish(std::move(name), events, wall);
  if (fr) {
    r.fr_samples = fr->samples().size();
    r.fr_taken = fr->taken();
    r.fr_bytes = fr->bytes_reserved();
  }
  r.clients = clients;
  r.cov = bins.stats_until(sc.duration).cov();
  r.queue_mean = monitor.queue_at_arrival().mean();

  MeanfieldParams mp;
  mp.capacity_pps = sc.bottleneck_pps();  // already mean-field scaled
  mp.base_rtt = sc.rtt_prop();
  mp.num_flows = clients;
  mp.red_min_th = sc.scaled_red_min_th();
  mp.red_max_th = sc.scaled_red_max_th();
  mp.red_max_p = sc.red_max_p;
  mp.max_window = sc.advertised_window;
  const MeanfieldFixedPoint fp = red_meanfield_fixed_point(mp);
  r.queue_fixed_point = fp.converged ? fp.queue_pkts : -1.0;

  const QueueStats& qs = net->measured_queue().stats();
  r.drop_frac = qs.arrivals == 0 ? 0.0
                                 : static_cast<double>(qs.drops) /
                                       static_cast<double>(qs.arrivals);
  r.bytes_per_flow = static_cast<double>(net->arena_bytes_reserved()) /
                     static_cast<double>(clients);
  return r;
}

void write_json(const std::string& path, const std::vector<BenchRow>& rows,
                bool smoke) {
  std::ofstream out(path, std::ios::trunc);
  out << "{\n  \"bench\": \"fig_meanfield\",\n  \"mode\": \""
      << (smoke ? "smoke" : "full") << "\",\n  \"schema\": 1,\n"
      << "  \"budget_bytes_per_flow\": " << kBudgetPerFlowBytes << ",\n"
      << "  \"hw_threads\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"results\": [\n";
  out.precision(10);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"ops\": " << r.ops
        << ", \"wall_s\": " << r.wall_s << ", \"ns_per_op\": " << r.ns_per_op
        << ", \"ops_per_sec\": " << r.ops_per_sec
        << ", \"clients\": " << r.clients << ", \"cov\": " << r.cov
        << ", \"queue_mean\": " << r.queue_mean
        << ", \"queue_fixed_point\": " << r.queue_fixed_point
        << ", \"drop_frac\": " << r.drop_frac
        << ", \"bytes_per_flow\": " << r.bytes_per_flow;
    if (r.fr_bytes > 0) {
      out << ", \"fr_samples\": " << r.fr_samples
          << ", \"fr_taken\": " << r.fr_taken
          << ", \"fr_bytes\": " << r.fr_bytes;
    }
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!out.flush()) {
    std::cerr << "fig_meanfield: failed to write " << path << "\n";
    std::exit(1);
  }
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int repeat = 3;
  std::string out_path = "BENCH_meanfield.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::max(1, std::atoi(arg.c_str() + 9));
    } else {
      std::cerr
          << "usage: fig_meanfield [--smoke] [--repeat=N] [--out=PATH]\n";
      return 2;
    }
  }

  std::cout << "fig_meanfield: mean-field scaling sweep (base N=60)\n"
            << "claim: c.o.v. of RTT-binned gateway arrivals decays toward "
               "the deterministic limit cycle's floor; mean RED occupancy "
               "tracks the closed-form fixed point\n";

  std::vector<int> grid = {100, 1000, 10000};
  if (!smoke) grid.push_back(100000);

  std::vector<BenchRow> rows;
  rows.push_back(bench_calibration(1'000'000, repeat));
  for (const int n : grid) {
    rows.push_back(run_meanfield(n));
    const BenchRow& r = rows.back();
    std::cout << r.name << ": cov=" << r.cov << " queue_mean=" << r.queue_mean
              << " fixed_point=" << r.queue_fixed_point
              << " drop_frac=" << r.drop_frac
              << " bytes/flow=" << r.bytes_per_flow << " events=" << r.ops
              << " wall=" << r.wall_s << " s\n";
  }

  // In-run sanity. The mean-field limit is a deterministic RED/TCP
  // limit cycle, so the c.o.v. falls toward the cycle's amplitude
  // (~0.10) and then flattens: require real decay overall and no
  // resurgence at any step, not strict monotonicity into the floor.
  bool cov_decays = rows.back().cov <= 0.6 * rows[1].cov;
  for (std::size_t i = 2; i < rows.size(); ++i) {
    if (rows[i].cov > 1.10 * rows[i - 1].cov) cov_decays = false;
  }
  std::cout << (cov_decays ? "PASS" : "DEVIATION")
            << ": c.o.v. decays to the mean-field floor across the N grid\n";

  // Parallel-engine rows: the same scenarios on 2 and 4 LPs for every
  // N >= 10000 (so smoke and full runs share row names). Appended after
  // the c.o.v. sanity check, which reasons over the sequential sweep
  // only; scripts/check_parallel.py gates these (events exactly equal to
  // the matching sequential row, wall within budget, speedup floors when
  // the hardware has the cores).
  for (const int n : grid) {
    if (n < 10000) continue;
    for (const int lp : {2, 4}) {
      rows.push_back(run_meanfield(n, lp));
      const BenchRow& r = rows.back();
      std::cout << r.name << ": events=" << r.ops << " wall=" << r.wall_s
                << " s cov=" << r.cov << " drop_frac=" << r.drop_frac << "\n";
    }
  }

  // Flight-recorder rows: the huge-N sampler on the same scenarios
  // (sequential engine). scripts/check_parallel.py gates their wall clock
  // at <= 5% over the matching untraced row and their sample budget
  // fixed — observability at mean-field scale must stay effectively free.
  for (const int n : grid) {
    if (n < 10000) continue;
    rows.push_back(run_meanfield(n, 1, true));
    const BenchRow& r = rows.back();
    std::cout << r.name << ": events=" << r.ops << " wall=" << r.wall_s
              << " s fr_samples=" << r.fr_samples << " fr_taken=" << r.fr_taken
              << " fr_bytes=" << r.fr_bytes << "\n";
  }

  write_json(out_path, rows, smoke);
  return 0;
}
