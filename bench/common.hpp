// Shared plumbing for the figure-reproduction harnesses. Every bench binary
// runs with no arguments, prints the paper's claim, the measured rows, and
// a PASS/DEVIATION verdict where the claim is checkable.
//
// Environment overrides:
//   BURST_DURATION   simulation seconds per run (default: the paper's 20 s)
//   BURST_SEED       base RNG seed (default 1)
//   BURST_CACHE_DIR  result-cache directory: figure sweeps are served from /
//                    recorded into the campaign result store (warm reruns
//                    simulate nothing)
//   BURST_NO_CACHE   set to ignore the cache even if BURST_CACHE_DIR is set
#pragma once

#include <string>
#include <vector>

#include "src/core/experiment.hpp"
#include "src/core/report.hpp"
#include "src/core/scenario.hpp"
#include "src/core/sweep.hpp"
#include "src/stats/trace_analysis.hpp"

namespace burst::bench {

/// Paper-default scenario with env-var overrides applied.
Scenario paper_base();

/// Prints the standard bench banner.
void banner(const std::string& figure, const std::string& paper_claim);

/// Prints a one-line verdict.
void verdict(bool ok, const std::string& what);

/// Client counts used for the Fig 2 sweep (the paper plots ~5..60).
std::vector<int> fig2_clients();

/// Client counts for Figs 3, 4 and 13 (the paper starts these at 30).
std::vector<int> fig34_clients();

/// Runs one named figure sweep through the campaign runner: identical
/// numbers to sweep_clients, but cache-backed when BURST_CACHE_DIR is set
/// (and shared across figure binaries, since seeds key on config name and
/// client count rather than loop indices).
std::vector<SweepSeries> figure_sweep(const std::string& name,
                                      const Scenario& base,
                                      const std::vector<int>& client_counts,
                                      const std::vector<SweepConfig>& configs);

/// If BURST_CSV_DIR is set, writes the sweep as <dir>/<name>.csv so
/// scripts/plot_figures.py can render the figure.
void maybe_write_sweep_csv(const std::string& name,
                           const std::vector<SweepSeries>& series,
                           double (*metric)(const ExperimentResult&));

/// Runs the cwnd-trace experiment behind Figs 5-12 and prints the result.
/// Returns the experiment result for extra checks.
ExperimentResult run_cwnd_figure(const std::string& figure,
                                 const std::string& claim, Transport transport,
                                 int num_clients);

}  // namespace burst::bench
