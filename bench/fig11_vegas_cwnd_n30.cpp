// Figure 11: evolution of TCP Vegas's congestion window, 30 clients.
// Same flat equilibrium as Fig 10, at higher load.
#include <iostream>

#include "bench/common.hpp"
#include "src/stats/running_stats.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  const auto r = run_cwnd_figure(
      "Figure 11 — TCP Vegas congestion windows, 30 clients",
      "windows remain near-optimal at moderate congestion; far fewer "
      "losses than Reno at the same load",
      Transport::kVegas, 30);

  // Contrast with Reno at the same load.
  Scenario sc = paper_base();
  sc.transport = Transport::kReno;
  sc.num_clients = 30;
  const auto reno = run_experiment(sc);

  std::cout << "\nVegas vs Reno at N=30: loss% " << fmt(r.loss_pct, 3)
            << " vs " << fmt(reno.loss_pct, 3) << ", timeouts " << r.timeouts
            << " vs " << reno.timeouts << "\n\n";
  verdict(r.loss_pct <= reno.loss_pct,
          "Vegas loses no more than Reno at 30 clients");
  verdict(r.timeouts <= reno.timeouts,
          "Vegas times out no more than Reno at 30 clients");
  verdict(r.cov <= reno.cov, "Vegas aggregate is smoother than Reno's");
  return 0;
}
