#include "bench/common.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "src/run/campaign.hpp"

namespace burst::bench {

Scenario paper_base() {
  Scenario s = Scenario::paper_default();
  if (const char* d = std::getenv("BURST_DURATION")) {
    s.duration = std::atof(d);
  }
  if (const char* seed = std::getenv("BURST_SEED")) {
    s.seed = static_cast<std::uint64_t>(std::atoll(seed));
  }
  return s;
}

void banner(const std::string& figure, const std::string& paper_claim) {
  std::cout << "==============================================================\n"
            << figure << "\n"
            << "Paper: " << paper_claim << "\n"
            << "==============================================================\n";
}

void verdict(bool ok, const std::string& what) {
  std::cout << (ok ? "[REPRODUCED] " : "[DEVIATION]  ") << what << "\n";
}

std::vector<int> fig2_clients() {
  std::vector<int> ns = range(4, 36, 4);
  for (int n : {38, 39, 40, 44, 48, 52, 56, 60}) ns.push_back(n);
  return ns;
}

std::vector<int> fig34_clients() { return range(30, 60, 3); }

std::vector<SweepSeries> figure_sweep(const std::string& name,
                                      const Scenario& base,
                                      const std::vector<int>& client_counts,
                                      const std::vector<SweepConfig>& configs) {
  CampaignSweep sweep;
  sweep.name = name;
  sweep.base = base;
  sweep.client_counts = client_counts;
  sweep.configs = configs;

  CampaignOptions opts;
  if (const char* cache = std::getenv("BURST_CACHE_DIR")) {
    opts.cache_dir = cache;
  }
  opts.use_cache = std::getenv("BURST_NO_CACHE") == nullptr;
  opts.log = opts.cache_dir.empty() ? nullptr : &std::cerr;
  return run_campaign({sweep}, opts).sweeps.front().second;
}

void maybe_write_sweep_csv(const std::string& name,
                           const std::vector<SweepSeries>& series,
                           double (*metric)(const ExperimentResult&)) {
  const char* dir = std::getenv("BURST_CSV_DIR");
  if (!dir) return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  if (!write_sweep_csv(path, series, metric)) {
    std::cerr << "error: could not write " << path << "\n";
    return;
  }
  std::cout << "wrote " << path << "\n";
}

ExperimentResult run_cwnd_figure(const std::string& figure,
                                 const std::string& claim, Transport transport,
                                 int num_clients) {
  banner(figure, claim);
  Scenario sc = paper_base();
  sc.transport = transport;
  sc.num_clients = num_clients;

  ExperimentOptions opts;
  // The paper traces three spread-out clients (e.g. 1, 10, 20 of 20).
  opts.trace_clients = {0, num_clients / 2, num_clients - 1};
  opts.cwnd_sample_period = 0.1;  // the paper's x-axis unit

  const ExperimentResult r = run_experiment(sc, opts);

  std::cout << "scenario: " << sc.label() << ", duration " << sc.duration
            << " s\n\n";
  print_cwnd_traces(std::cout, r.cwnd_traces, sc.duration, 0.1, 50);
  std::cout << "\ntimeouts=" << r.timeouts
            << " fast_retransmits=" << r.fast_retransmits
            << " loss%=" << fmt(r.loss_pct, 2) << " cov=" << fmt(r.cov, 4)
            << " (poisson " << fmt(r.poisson_cov, 4) << ")\n";
  return r;
}

}  // namespace burst::bench
