// Ablation: Vegas alpha/beta. Sec 3.2.3: with alpha=1 each of N streams
// tries to keep >= 1 packet queued, so the aggregate queue target is N.
// Raising alpha/beta should push the gateway queue (and loss, once the
// target passes B or RED's max_th) up proportionally.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  banner("Ablation — Vegas alpha/beta queue-occupancy targets",
         "aggregate queue target ~ N*alpha: larger alpha/beta => more "
         "queueing and (past B) more loss, especially with RED");

  std::vector<std::vector<std::string>> rows;
  double loss_13 = 0.0, loss_46 = 0.0;
  for (int n : {30, 45}) {
    for (const VegasConfig& v :
         {VegasConfig{1, 3, 1}, VegasConfig{2, 4, 1}, VegasConfig{4, 6, 1}}) {
      for (GatewayQueue q : {GatewayQueue::kDropTail, GatewayQueue::kRed}) {
        Scenario sc = paper_base();
        sc.num_clients = n;
        sc.transport = Transport::kVegas;
        sc.vegas = v;
        sc.gateway = q;
        const auto r = run_experiment(sc);
        rows.push_back({std::to_string(n),
                        fmt(v.alpha, 0) + "/" + fmt(v.beta, 0), to_string(q),
                        fmt(r.cov, 4), std::to_string(r.delivered),
                        fmt(r.loss_pct, 2)});
        if (n == 45 && q == GatewayQueue::kDropTail) {
          if (v.alpha == 1) loss_13 = r.loss_pct;
          if (v.alpha == 4) loss_46 = r.loss_pct;
        }
      }
    }
  }
  print_table(std::cout,
              {"clients", "alpha/beta", "queue", "cov", "delivered", "loss%"},
              rows);

  std::cout << '\n';
  verdict(loss_46 >= loss_13,
          "raising the per-stream queue target raises loss at N=45 "
          "(aggregate target crosses the 50-packet buffer)");
  return 0;
}
