// Table 1: simulation parameters. Prints the reconstructed configuration
// and the derived quantities the reproduction depends on.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  banner("Table 1 — Simulation Parameters",
         "client/bottleneck link rates & delays, windows, buffers, traffic");
  const Scenario s = paper_base();

  print_table(
      std::cout, {"parameter", "value"},
      {
          {"client link bandwidth (mu_c)", fmt(s.client_bw_bps / 1e6, 0) + " Mbps"},
          {"client link delay (tau_c)", fmt(s.client_delay * 1e3, 0) + " ms"},
          {"bottleneck link bandwidth (mu_s)", fmt(s.bottleneck_bw_bps / 1e6, 0) + " Mbps"},
          {"bottleneck link delay (tau_s)", fmt(s.bottleneck_delay * 1e3, 0) + " ms"},
          {"TCP max advertised window", fmt(s.advertised_window, 0) + " packets"},
          {"gateway buffer size (B)", std::to_string(s.gateway_buffer) + " packets"},
          {"packet size", std::to_string(s.payload_bytes) + " bytes"},
          {"avg packet intergeneration time", fmt(s.mean_interarrival, 2) + " s"},
          {"total test time", fmt(s.duration, 0) + " s"},
          {"TCP Vegas alpha", fmt(s.vegas.alpha, 0)},
          {"TCP Vegas beta", fmt(s.vegas.beta, 0)},
          {"TCP Vegas gamma", fmt(s.vegas.gamma, 0)},
          {"RED min threshold", fmt(s.red_min_th, 0) + " packets"},
          {"RED max threshold", fmt(s.red_max_th, 0) + " packets"},
      });

  std::cout << "\nDerived:\n";
  print_table(
      std::cout, {"quantity", "value"},
      {
          {"data packet wire size", std::to_string(s.wire_bytes()) + " bytes"},
          {"round-trip propagation delay", fmt(s.rtt_prop() * 1e3, 0) + " ms"},
          {"bottleneck capacity", fmt(s.bottleneck_pps(), 1) + " pkt/s"},
          {"per-client offered load", fmt(1.0 / s.mean_interarrival, 0) + " pkt/s"},
          {"saturation client count", fmt(s.saturation_clients(), 2)},
      });

  verdict(s.saturation_clients() > 38.0 && s.saturation_clients() < 39.0,
          "saturation falls between 38 and 39 clients (the paper's "
          "stabilization crossover, Figs 7-8)");
  return 0;
}
