// Ablation: heterogeneous round-trip times. The paper's clients all share
// one RTT; real distributed systems do not. Reno's throughput scales like
// 1/RTT under contention, so short-RTT flows should crowd out long-RTT
// ones; Vegas's rate targeting is less RTT-coupled.
#include <iostream>

#include "bench/common.hpp"
#include "src/core/dumbbell.hpp"
#include "src/stats/correlation.hpp"
#include "src/stats/fairness.hpp"

namespace {

using namespace burst;

struct HeteroResult {
  double rtt_goodput_corr = 0.0;  // Pearson(client delay, delivered)
  double fairness = 1.0;
};

HeteroResult run_hetero(Transport t, int n) {
  Scenario sc = bench::paper_base();
  sc.transport = t;
  sc.num_clients = n;
  sc.client_delay_spread = 0.8;  // delays span 4..36 ms around 20 ms

  Simulator sim(sc.seed);
  Dumbbell net(sim, sc);
  net.start_sources();
  sim.run(sc.duration);

  std::vector<double> delays, goodputs;
  const auto per_flow = net.per_flow_delivered();
  for (int i = 0; i < n; ++i) {
    delays.push_back(sc.client_delay_for(i));
    goodputs.push_back(per_flow[static_cast<std::size_t>(i)]);
  }
  HeteroResult out;
  out.rtt_goodput_corr = pearson(delays, goodputs);
  out.fairness = jain_fairness(per_flow);
  return out;
}

}  // namespace

int main() {
  using namespace burst;
  using namespace burst::bench;

  banner("Ablation — heterogeneous client RTTs",
         "under contention both protocols favor short-RTT flows (Reno via "
         "1/RTT throughput scaling, Vegas via its per-RTT update rate — "
         "cf. the paper's ref [12]); Vegas still shares more fairly "
         "overall");

  const int n = 55;  // past saturation: flows genuinely compete
  std::vector<std::vector<std::string>> rows;
  HeteroResult reno{}, vegas{};
  for (Transport t : {Transport::kReno, Transport::kVegas}) {
    const auto r = run_hetero(t, n);
    rows.push_back(
        {to_string(t), fmt(r.rtt_goodput_corr, 3), fmt(r.fairness, 4)});
    if (t == Transport::kReno) reno = r;
    else vegas = r;
  }
  print_table(std::cout, {"transport", "corr(RTT, goodput)", "fairness"},
              rows);

  std::cout << '\n';
  verdict(reno.rtt_goodput_corr < -0.1,
          "Reno goodput falls with RTT (short-RTT flows win)");
  verdict(vegas.rtt_goodput_corr < -0.1,
          "Vegas is RTT-biased too (per-RTT increments favor short RTTs)");
  verdict(vegas.fairness > reno.fairness,
          "Vegas still shares the bottleneck more fairly overall");
  return 0;
}
