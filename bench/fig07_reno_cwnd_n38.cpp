// Figure 7: evolution of TCP Reno's congestion window, 38 clients — the
// last load below the saturation crossover. The paper reports that the
// windows stabilize into a steady state after a long transient ("after
// 200 time units"), while at 39 clients they never do (Fig 8).
//
// Reproduction note: whether N=38 fully quiesces is sensitive to the
// exact capacity margin (at rho=0.988 even an unmodulated Poisson
// aggregate overflows a 50-packet buffer occasionally). We therefore
// check the robust form of the claim — loss activity does not intensify
// at 38 clients, and a slightly lower load (N=36, rho=0.94) does fully
// stabilize — and leave the sharp 38/39 dichotomy to EXPERIMENTS.md.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  const auto r = run_cwnd_figure(
      "Figure 7 — TCP Reno congestion windows, 38 clients",
      "just below saturation: windows take long to stabilize but "
      "eventually reach a steady state (crossover is between 38 and 39)",
      Transport::kReno, 38);

  const Time dur = r.scenario.duration;
  const auto early = decrease_counts(r.cwnd_traces, 0.0, dur / 2);
  const auto late = decrease_counts(r.cwnd_traces, dur / 2, dur);
  int early_total = 0, late_total = 0;
  for (int c : early) early_total += c;
  for (int c : late) late_total += c;

  std::cout << "\nwindow decreases among traced flows: first half "
            << early_total << ", second half " << late_total << "\n\n";
  verdict(r.scenario.utilization() < 1.0,
          "offered load is still below capacity at N=38");
  verdict(late_total <= static_cast<int>(1.2 * early_total) + 2,
          "loss activity does not intensify over time at N=38");

  // The stabilization phenomenon itself, a couple of clients lower.
  Scenario sc36 = paper_base();
  sc36.transport = Transport::kReno;
  sc36.num_clients = 36;
  sc36.duration = std::max(sc36.duration, 40.0);
  ExperimentOptions opts;
  opts.trace_clients = {0, 17, 35};
  const auto r36 = run_experiment(sc36, opts);
  const auto late36 =
      decrease_counts(r36.cwnd_traces, sc36.duration / 2, sc36.duration);
  const auto early36 =
      decrease_counts(r36.cwnd_traces, 0.0, sc36.duration / 2);
  int e36 = 0, l36 = 0;
  for (int c : early36) e36 += c;
  for (int c : late36) l36 += c;
  std::cout << "at N=36 (rho=" << fmt(sc36.utilization(), 3)
            << "): first half " << e36 << " decreases, second half " << l36
            << "\n";
  verdict(l36 < e36,
          "slightly below the crossover, windows do settle toward a steady "
          "state (the stabilization the paper shows at 38)");
  return 0;
}
