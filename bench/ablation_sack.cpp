// Ablation: TCP SACK. Better loss recovery removes many of Reno's
// timeouts — but does it remove the *burstiness*? The paper's mechanism
// is the synchronized multiplicative decrease, which SACK keeps, so the
// c.o.v. should improve only partially.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  banner("Ablation — TCP SACK vs Reno/NewReno/Tahoe",
         "testing the paper's mechanism decomposition: if Reno's "
         "burstiness is mostly timeout->re-slow-start bursts, recovery "
         "that avoids timeouts (SACK) should smooth the aggregate");

  std::vector<std::vector<std::string>> rows;
  double reno_cov = 0, sack_cov = 0, udp_gap_reno = 0, udp_gap_sack = 0;
  std::uint64_t reno_to = 0, sack_to = 0, sack_thr = 0, reno_thr = 0;
  const int n = 50;
  for (Transport t : {Transport::kTahoe, Transport::kReno,
                      Transport::kNewReno, Transport::kSack}) {
    Scenario sc = paper_base();
    sc.num_clients = n;
    sc.transport = t;
    const auto r = run_experiment(sc);
    rows.push_back({to_string(t), fmt(r.cov, 4), fmt(r.poisson_cov, 4),
                    std::to_string(r.delivered), fmt(r.loss_pct, 2),
                    std::to_string(r.timeouts),
                    std::to_string(r.fast_retransmits)});
    if (t == Transport::kReno) {
      reno_cov = r.cov;
      reno_to = r.timeouts;
      reno_thr = r.delivered;
      udp_gap_reno = r.cov / r.poisson_cov;
    }
    if (t == Transport::kSack) {
      sack_cov = r.cov;
      sack_to = r.timeouts;
      sack_thr = r.delivered;
      udp_gap_sack = r.cov / r.poisson_cov;
    }
  }
  print_table(std::cout,
              {"transport", "cov", "poisson", "delivered", "loss%",
               "timeouts", "fast_rxt"},
              rows);

  std::cout << '\n';
  verdict(sack_to < reno_to, "SACK needs far fewer timeouts than Reno");
  verdict(sack_cov < reno_cov,
          "avoiding timeouts smooths the aggregate dramatically — "
          "evidence that Reno's burstiness is dominated by the "
          "timeout -> cwnd=1 -> slow-start-burst cycle the paper "
          "describes in Sec 3.2.1");
  verdict(sack_thr >= reno_thr * 9 / 10,
          "SACK's goodput stays within 10% of Reno's");
  std::cout << "(Reno cov x" << fmt(udp_gap_reno, 2) << " Poisson, SACK x"
            << fmt(udp_gap_sack, 2) << ")\n";
  return 0;
}
