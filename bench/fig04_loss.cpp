// Figure 4: packet loss percentage at the gateway vs number of clients,
// for Reno, Reno/RED, Vegas, Vegas/RED and Reno/DelayAck.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  banner("Figure 4 — Packet loss percentage of the aggregated TCP traffic",
         "loss grows past saturation; plain Vegas is lowest; Vegas/RED is "
         "higher than plain Vegas (and higher than plain Reno)");

  const Scenario base = paper_base();
  const auto ns = fig34_clients();
  const auto series = figure_sweep("fig04_loss", base, ns, paper_protocol_set(false));

  print_metric_vs_clients(
      std::cout, series, "packet loss percentage (%)",
      [](const ExperimentResult& r) { return r.loss_pct; }, 2);
  maybe_write_sweep_csv("fig04_loss", series,
                        [](const ExperimentResult& r) { return r.loss_pct; });

  auto tail_mean = [&](const char* name) {
    double sum = 0.0;
    int cnt = 0;
    for (const auto& s : series) {
      if (s.name != name) continue;
      for (const auto& p : s.points) {
        if (p.num_clients < 45) continue;
        sum += p.result.loss_pct;
        ++cnt;
      }
    }
    return sum / cnt;
  };
  const double reno = tail_mean("Reno");
  const double vegas = tail_mean("Vegas");
  const double vegas_red = tail_mean("Vegas/RED");

  std::cout << "\nheavy-congestion (N>=45) mean loss%: Reno "
            << fmt(reno, 2) << ", Vegas " << fmt(vegas, 2) << ", Vegas/RED "
            << fmt(vegas_red, 2) << "\n\n";

  verdict(vegas < reno, "plain Vegas has the lowest loss among TCP variants");
  verdict(vegas_red > vegas, "Vegas/RED loses more than plain Vegas");
  verdict(vegas_red > reno,
          "Vegas/RED loses more than plain Reno (Sec 3.2.3's surprise)");

  // Loss grows with load for every series.
  bool monotone_tail = true;
  for (const auto& s : series) {
    if (s.points.front().result.loss_pct > s.points.back().result.loss_pct) {
      monotone_tail = false;
    }
  }
  verdict(monotone_tail, "loss grows from N=30 to N=60 for every variant");
  return 0;
}
