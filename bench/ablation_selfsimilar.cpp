// Ablation: the self-similarity contrast. The literature the paper argues
// against ([11],[14],[19]) derives burstiness from heavy-tailed sources.
// Here we aggregate (a) Poisson and (b) Pareto-on/off sources over UDP and
// show: the heavy-tailed aggregate stays bursty across time scales
// (elevated Hurst), while the Poisson aggregate smooths out — and then
// show TCP Reno re-introducing burstiness into the *smooth* workload,
// which is the paper's central point.
#include <iostream>
#include <memory>

#include "bench/common.hpp"
#include "src/app/pareto_on_off_source.hpp"
#include "src/core/dumbbell.hpp"
#include "src/stats/binned_counter.hpp"
#include "src/stats/hurst.hpp"
#include "src/stats/time_series.hpp"

namespace {

using namespace burst;

struct AggregateResult {
  std::vector<double> covs;  // across aggregation scales
  double hurst_vt = 0.5;
  double hurst_rs = 0.5;
};

const std::vector<int> kScales{1, 4, 16, 64};

/// Bins gateway arrivals of a dumbbell run, optionally swapping the
/// Poisson sources for Pareto on/off ones.
AggregateResult run_aggregate(Transport transport, bool pareto_sources,
                              double duration) {
  Scenario sc = bench::paper_base();
  sc.transport = transport;
  sc.num_clients = 40;
  sc.duration = duration;

  Simulator sim(sc.seed);
  Dumbbell net(sim, sc);
  BinnedCounter bins(sc.rtt_prop(), sc.warmup);
  net.bottleneck_queue().taps().add_arrival_listener([&](const Packet& p, Time) {
    if (p.type == PacketType::kData) bins.record(sim.now());
  });

  std::vector<std::unique_ptr<ParetoOnOffSource>> pareto;
  if (pareto_sources) {
    // Same 100 pkt/s average rate as the Poisson workload, but with
    // heavy-tailed (alpha=1.4) on/off sojourns.
    ParetoOnOffConfig cfg;
    cfg.shape = 1.4;
    cfg.mean_on = 0.5;
    cfg.mean_off = 0.5;
    cfg.on_rate_pps = 200.0;
    for (int i = 0; i < sc.num_clients; ++i) {
      pareto.push_back(std::make_unique<ParetoOnOffSource>(
          sim, net.sender(i), cfg, sim.rng().fork()));
      pareto.back()->start();
    }
  } else {
    net.start_sources();
  }
  sim.run(sc.duration);

  AggregateResult out;
  // complete_bins: the horizon rarely lands on a bin boundary, and a
  // truncated final bin would bias every scale's c.o.v. upward.
  const auto xs = to_doubles(bins.complete_bins(sc.duration));
  out.covs = cov_across_scales(xs, kScales);
  out.hurst_vt = hurst_variance_time(xs, {1, 2, 4, 8, 16, 32, 64});
  out.hurst_rs = hurst_rescaled_range(xs, {16, 32, 64, 128, 256});
  return out;
}

}  // namespace

int main() {
  using namespace burst;
  using namespace burst::bench;

  banner("Ablation — self-similarity contrast (Poisson vs heavy-tailed)",
         "heavy-tailed sources stay bursty across time scales (high "
         "Hurst); Poisson smooths out; TCP makes even Poisson bursty");

  // Longer runs: Hurst estimation needs many bins.
  const double duration = 120.0;
  const auto udp_poisson = run_aggregate(Transport::kUdp, false, duration);
  const auto udp_pareto = run_aggregate(Transport::kUdp, true, duration);
  const auto reno_poisson = run_aggregate(Transport::kReno, false, duration);

  std::vector<std::vector<std::string>> rows;
  auto add_row = [&](const std::string& name, const AggregateResult& r) {
    std::vector<std::string> row{name};
    for (double c : r.covs) row.push_back(fmt(c, 4));
    row.push_back(fmt(r.hurst_vt, 3));
    row.push_back(fmt(r.hurst_rs, 3));
    rows.push_back(std::move(row));
  };
  add_row("UDP/Poisson", udp_poisson);
  add_row("UDP/Pareto", udp_pareto);
  add_row("Reno/Poisson", reno_poisson);

  print_table(std::cout,
              {"workload", "cov@1", "cov@4", "cov@16", "cov@64", "H(var-t)",
               "H(R/S)"},
              rows);

  std::cout << '\n';
  verdict(udp_pareto.hurst_vt > udp_poisson.hurst_vt + 0.1,
          "heavy-tailed aggregate shows elevated Hurst vs Poisson");
  // Poisson smooths as sqrt(scale): cov@64 ~ cov@1/8.
  verdict(udp_poisson.covs[0] / udp_poisson.covs[3] > 5.0,
          "Poisson aggregate smooths out under time-scale aggregation");
  verdict(udp_pareto.covs[3] / udp_poisson.covs[3] > 2.0,
          "heavy-tailed aggregate stays bursty at coarse time scales");
  verdict(reno_poisson.covs[0] > 1.3 * udp_poisson.covs[0],
          "TCP Reno re-introduces burstiness into the smooth Poisson "
          "workload (the paper's thesis)");
  return 0;
}
