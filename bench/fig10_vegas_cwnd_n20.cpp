// Figure 10: evolution of TCP Vegas's congestion window, 20 clients.
// Vegas pins each window near its optimal value, so traces are nearly
// flat compared with Reno's sawtooth at the same load (Fig 5).
#include <iostream>

#include "bench/common.hpp"
#include "src/stats/running_stats.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  const auto r = run_cwnd_figure(
      "Figure 10 — TCP Vegas congestion windows, 20 clients",
      "windows stay close to their optimal value; traffic from each client "
      "is modulated nearly equally each RTT",
      Transport::kVegas, 20);

  // Steady-state flatness: after the slow-start transient the traced
  // windows vary little (compare Fig 5's Reno sawtooth).
  const Time dur = r.scenario.duration;
  double worst_cov = 0.0;
  for (const auto& t : r.cwnd_traces) {
    RunningStats rs;
    for (const auto& [at, v] : t.points()) {
      if (at >= dur / 4) rs.add(v);
    }
    worst_cov = std::max(worst_cov, rs.cov());
  }
  std::cout << "\nworst steady-state cwnd c.o.v. among traced flows: "
            << fmt(worst_cov, 3) << "\n\n";
  verdict(worst_cov < 0.35, "Vegas windows hold near equilibrium (flat)");
  verdict(r.timeouts == 0, "no timeouts at 20 clients under Vegas");
  verdict(r.loss_pct < 0.1, "essentially lossless at 20 clients");
  return 0;
}
