// Ablation: congestion-window validation (RFC 2861). Sec 3.2.1 explains
// the paper's slow-start losses as a banked-window effect: cwnd keeps
// growing while the Poisson application under-uses it, then a backlog
// burst releases the whole window at once. If growth is gated on actual
// window usage, the banked capacity never builds and the bursts shrink.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  banner("Ablation — congestion-window validation (RFC 2861)",
         "gating cwnd growth on actual usage removes the banked-window "
         "bursts behind the paper's slow-start losses");

  std::vector<std::vector<std::string>> rows;
  double loss_plain_35 = 0, loss_valid_35 = 0;
  std::uint64_t to_plain_35 = 0, to_valid_35 = 0;
  std::uint64_t thr_plain_50 = 0, thr_valid_50 = 0;
  for (int n : {20, 35, 50}) {
    for (bool validation : {false, true}) {
      Scenario sc = paper_base();
      sc.num_clients = n;
      sc.transport = Transport::kReno;
      sc.cwnd_validation = validation;
      const auto r = run_experiment(sc);
      rows.push_back({std::to_string(n), validation ? "on" : "off",
                      fmt(r.cov, 4), std::to_string(r.delivered),
                      fmt(r.loss_pct, 2), std::to_string(r.timeouts)});
      if (n == 35) {
        (validation ? loss_valid_35 : loss_plain_35) = r.loss_pct;
        (validation ? to_valid_35 : to_plain_35) = r.timeouts;
      }
      if (n == 50) (validation ? thr_valid_50 : thr_plain_50) = r.delivered;
    }
  }
  print_table(std::cout,
              {"clients", "validation", "cov", "delivered", "loss%",
               "timeouts"},
              rows);

  std::cout
      << "\nNote: the N=20 start-transient is unchanged — during slow-start\n"
      << "catch-up the flows *are* window-limited, so validation cannot\n"
      << "gate those bursts. The banked-window effect shows at moderate\n"
      << "congestion, where steady-state flows idle below their windows.\n\n";
  verdict(loss_valid_35 <= loss_plain_35 && to_valid_35 <= to_plain_35,
          "validation trims losses and timeouts at moderate congestion "
          "(the banked-window component of Sec 3.2.1's mechanism)");
  verdict(thr_valid_50 >= thr_plain_50 * 9 / 10,
          "validation costs little goodput under saturation");
  return 0;
}
