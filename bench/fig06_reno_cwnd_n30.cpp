// Figure 6: evolution of TCP Reno's congestion window, 30 clients.
// Congestion now occurs earlier in slow start, and simultaneous window
// decreases across streams begin to appear, before flows settle into a
// linear-increase pattern.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace burst;
  using namespace burst::bench;

  const auto r = run_cwnd_figure(
      "Figure 6 — TCP Reno congestion windows, 30 clients",
      "congestion occurs earlier in slow start; some simultaneous window "
      "decreases; flows eventually stabilize into linear increase",
      Transport::kReno, 30);

  std::cout << '\n';
  verdict(r.gw_drops > 0, "congestion (drops) present at 30 clients");

  // More loss activity than at N=20 with the same configuration.
  Scenario sc20 = paper_base();
  sc20.transport = Transport::kReno;
  sc20.num_clients = 20;
  const auto r20 = run_experiment(sc20);
  verdict(r.gw_drops > r20.gw_drops,
          "more drops than the 20-client run (congestion arrives earlier)");

  // Simultaneous decreases among the traced flows exist.
  const double sync = max_sync_fraction(r.cwnd_traces, 0.1, 0.0,
                                        r.scenario.duration);
  verdict(sync >= 2.0 / 3.0,
          "simultaneous window decreases across traced streams appear");
  return 0;
}
