// burstsim: command-line driver for single experiments. See --help.
#include <fstream>
#include <iostream>
#include <memory>

#include "src/core/cli.hpp"
#include "src/core/report.hpp"
#include "src/obs/trace.hpp"

namespace {

// Writes one export of the structured trace; returns success.
bool write_trace_file(const burst::TraceSink& sink, const std::string& path,
                      bool perfetto) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "burstsim: could not open " << path << "\n";
    return false;
  }
  const bool ok = perfetto ? sink.write_chrome_trace(out)
                           : sink.write_jsonl(out);
  out.flush();
  if (!ok || !out) {
    std::cerr << "burstsim: short write to " << path << "\n";
    return false;
  }
  std::cout << "wrote " << path << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace burst;

  CliError error;
  auto request = parse_cli({argv + 1, argv + argc}, &error);
  if (!request) {
    std::cerr << "burstsim: " << error.message << "\n\n" << cli_usage();
    return 2;
  }
  if (request->show_help) {
    std::cout << cli_usage();
    return 0;
  }

  std::unique_ptr<TraceSink> trace;
  if (!request->trace_path.empty()) {
    trace = std::make_unique<TraceSink>();
    request->options.trace = trace.get();
  }

  const Scenario& sc = request->scenario;
  std::cout << "running: " << sc.label() << ", " << sc.duration
            << " s simulated, seed " << sc.seed << "\n";
  const ExperimentResult r = run_experiment(sc, request->options);

  print_table(
      std::cout, {"metric", "value"},
      {
          {"c.o.v. of gateway arrivals per RTT", fmt(r.cov, 4)},
          {"analytic Poisson c.o.v.", fmt(r.poisson_cov, 4)},
          {"application packets generated", std::to_string(r.app_generated)},
          {"packets delivered in order", std::to_string(r.delivered)},
          {"gateway arrivals / drops",
           std::to_string(r.gw_arrivals) + " / " + std::to_string(r.gw_drops)},
          {"packet loss", fmt(r.loss_pct, 2) + " %"},
          {"timeouts / fast retransmits",
           std::to_string(r.timeouts) + " / " +
               std::to_string(r.fast_retransmits)},
          {"duplicate ACKs received", std::to_string(r.dupacks)},
          {"Jain fairness", fmt(r.fairness, 4)},
      });

  if (!request->options.trace_clients.empty()) {
    std::cout << '\n';
    print_cwnd_traces(std::cout, r.cwnd_traces, sc.duration, 0.1, 40);
  }
  if (!request->csv_path.empty()) {
    bool csv_ok = true;
    for (const auto& t : r.cwnd_traces) {
      const std::string path =
          request->csv_path + "." + t.name() + ".csv";
      if (!write_trace_csv(path, t)) {
        std::cerr << "burstsim: could not write " << path << "\n";
        csv_ok = false;
        continue;
      }
      std::cout << "wrote " << path << "\n";
    }
    if (!csv_ok) return 1;
  }
  if (trace) {
    std::cout << "trace: " << trace->emitted() << " records emitted, "
              << trace->dropped() << " overwritten (ring capacity)\n";
    if (!write_trace_file(*trace, request->trace_path + ".jsonl", false) ||
        !write_trace_file(*trace, request->trace_path + ".perfetto.json",
                          true)) {
      return 1;
    }
  }
  return 0;
}
