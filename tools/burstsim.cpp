// burstsim: command-line driver for single experiments. See --help.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cli.hpp"
#include "src/core/report.hpp"
#include "src/obs/flight_recorder.hpp"
#include "src/obs/runtime_trace.hpp"
#include "src/obs/trace.hpp"
#include "src/topo/parser.hpp"
#include "src/topo/runner.hpp"

namespace {

constexpr const char* kTopoUsage =
    R"(topology files (see DESIGN.md section 10):
  --scenario=FILE   build and run the .topo scenario FILE instead of the
                    flag-built dumbbell; combine with --set=field=value
                    (repeatable) to override Scenario fields
  --validate=FILE   parse + validate FILE, print its fingerprint and
                    exit; nonzero exit and a file:line:col diagnostic on
                    any error (no simulation)
)";

// Per-LP phase breakdown: where each logical process spent its wall clock
// (processing events vs blocked at window barriers) plus the channel and
// merge high-water marks. Sequential runs carry no lp_phases; with
// --profile we synthesize the degenerate one-LP row (windows=0) so
// scripts can parse the same table shape at any --lp.
void print_lp_phases(std::ostream& os, const burst::ExperimentResult& r,
                     bool force) {
  std::vector<burst::LpPhase> phases = r.lp_phases;
  if (phases.empty()) {
    if (!force) return;
    burst::LpPhase p;
    p.lp = 0;
    p.events = r.sim_events;
    p.run_s = r.sim_wall_s;
    phases.push_back(p);
  }
  std::vector<std::vector<std::string>> rows;
  for (const burst::LpPhase& p : phases) {
    rows.push_back({"LP " + std::to_string(p.lp), std::to_string(p.events),
                    std::to_string(p.windows),
                    std::to_string(p.msgs_in) + " / " +
                        std::to_string(p.msgs_out),
                    std::to_string(p.merge_high_water),
                    std::to_string(p.chan_high_water) + " / " +
                        std::to_string(p.chan_overflows),
                    burst::fmt(p.horizon_advance_mean, 4) + " s",
                    burst::fmt(p.run_s, 3) + " s",
                    burst::fmt(p.wait_s, 3) + " s"});
  }
  os << '\n' << "parallel engine: " << r.lp_shards << " LP"
     << (r.lp_shards == 1 ? "" : "s") << "\n";
  burst::print_table(os,
                     {"process", "events", "windows", "msgs in/out",
                      "merge hw", "chan hw/ovf", "horizon adv", "run",
                      "barrier"},
                     rows);
}

// Writes one export of the structured trace; returns success.
bool write_trace_file(const burst::TraceSink& sink, const std::string& path,
                      bool perfetto) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "burstsim: could not open " << path << "\n";
    return false;
  }
  const bool ok = perfetto ? sink.write_chrome_trace(out)
                           : sink.write_jsonl(out);
  out.flush();
  if (!ok || !out) {
    std::cerr << "burstsim: short write to " << path << "\n";
    return false;
  }
  std::cout << "wrote " << path << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace burst;

  // Topology-file modes are handled before the flag parser: they replace
  // the flag-built Scenario wholesale.
  std::string topo_file;
  std::string validate_file;
  TopoOverrides overrides;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scenario=", 0) == 0) {
      topo_file = arg.substr(11);
    } else if (arg.rfind("--validate=", 0) == 0) {
      validate_file = arg.substr(11);
    } else if (arg.rfind("--set=", 0) == 0) {
      const std::string kv = arg.substr(6);
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos) {
        std::cerr << "burstsim: --set wants field=value, got '" << kv << "'\n";
        return 2;
      }
      overrides.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else {
      args.push_back(arg);
    }
  }
  if (!validate_file.empty()) {
    TopoError terr;
    const auto spec = load_topo_file(validate_file, &terr, overrides);
    if (!spec) {
      std::cerr << terr.render(validate_file) << "\n";
      return 1;
    }
    std::cout << "ok: " << validate_file << "\n"
              << "scenario:    " << spec->name << "\n"
              << "nodes:       " << spec->total_nodes() << " ("
              << spec->nodes.size() << " groups)\n"
              << "links:       " << spec->links.size() << " statements\n"
              << "flows:       " << spec->flows.size() << " statements\n"
              << "fingerprint: " << topo_key(*spec).hex() << "\n";
    return 0;
  }
  if (!topo_file.empty()) {
    ExperimentOptions topt;
    bool topo_profile = false;
    for (const std::string& arg : args) {
      if (arg.rfind("--lp=", 0) == 0) {
        const int n = std::atoi(arg.c_str() + 5);
        if (n < 1) {
          std::cerr << "burstsim: --lp needs a positive integer\n";
          return 2;
        }
        topt.lp_shards = n;
        continue;
      }
      if (arg == "--profile") {
        topo_profile = true;
        continue;
      }
      std::cerr << "burstsim: --scenario only combines with --set=..., "
                   "--lp=N and --profile, got '"
                << arg << "'\n";
      return 2;
    }
    TopoError terr;
    const auto spec = load_topo_file(topo_file, &terr, overrides);
    if (!spec) {
      std::cerr << terr.render(topo_file) << "\n";
      return 1;
    }
    std::cout << "running: " << spec->name << " (" << spec->total_nodes()
              << " nodes), " << spec->scenario.duration
              << " s simulated, seed " << spec->scenario.seed
              << "\nfingerprint: " << topo_key(*spec).hex() << "\n";
    const ExperimentResult r = run_topo_experiment(*spec, topt);
    print_table(
        std::cout, {"metric", "value"},
        {
            {"c.o.v. of measured-link arrivals per RTT", fmt(r.cov, 4)},
            {"analytic Poisson c.o.v.", fmt(r.poisson_cov, 4)},
            {"application packets generated", std::to_string(r.app_generated)},
            {"packets delivered in order", std::to_string(r.delivered)},
            {"measured-queue arrivals / drops",
             std::to_string(r.gw_arrivals) + " / " +
                 std::to_string(r.gw_drops)},
            {"packet loss", fmt(r.loss_pct, 2) + " %"},
            {"timeouts / fast retransmits",
             std::to_string(r.timeouts) + " / " +
                 std::to_string(r.fast_retransmits)},
            {"Jain fairness", fmt(r.fairness, 4)},
            {"routing errors", std::to_string(r.routing_errors)},
        });
    print_lp_phases(std::cout, r, topo_profile);
    return 0;
  }

  CliError error;
  auto request = parse_cli(args, &error);
  if (!request) {
    std::cerr << "burstsim: " << error.message << "\n\n" << cli_usage()
              << "\n" << kTopoUsage;
    return 2;
  }
  if (request->show_help) {
    std::cout << cli_usage() << "\n" << kTopoUsage;
    return 0;
  }

  std::unique_ptr<TraceSink> trace;
  if (!request->trace_path.empty()) {
    trace = std::make_unique<TraceSink>();
    request->options.trace = trace.get();
  }
  std::unique_ptr<FlightRecorder> flight;
  if (!request->fr_path.empty()) {
    FlightRecorderOptions fopts;
    fopts.period = request->fr_period;
    fopts.max_samples = static_cast<std::size_t>(request->fr_cap);
    flight = std::make_unique<FlightRecorder>(fopts);
    request->options.flight = flight.get();
  }

  const Scenario& sc = request->scenario;
  std::cout << "running: " << sc.label() << ", " << sc.duration
            << " s simulated, seed " << sc.seed << "\n";
  const ExperimentResult r = run_experiment(sc, request->options);

  print_table(
      std::cout, {"metric", "value"},
      {
          {"c.o.v. of gateway arrivals per RTT", fmt(r.cov, 4)},
          {"analytic Poisson c.o.v.", fmt(r.poisson_cov, 4)},
          {"application packets generated", std::to_string(r.app_generated)},
          {"packets delivered in order", std::to_string(r.delivered)},
          {"gateway arrivals / drops",
           std::to_string(r.gw_arrivals) + " / " + std::to_string(r.gw_drops)},
          {"packet loss", fmt(r.loss_pct, 2) + " %"},
          {"timeouts / fast retransmits",
           std::to_string(r.timeouts) + " / " +
               std::to_string(r.fast_retransmits)},
          {"duplicate ACKs received", std::to_string(r.dupacks)},
          {"Jain fairness", fmt(r.fairness, 4)},
      });
  print_lp_phases(std::cout, r, request->profile);

  if (!request->options.trace_clients.empty()) {
    std::cout << '\n';
    print_cwnd_traces(std::cout, r.cwnd_traces, sc.duration, 0.1, 40);
  }
  if (!request->csv_path.empty()) {
    bool csv_ok = true;
    for (const auto& t : r.cwnd_traces) {
      const std::string path =
          request->csv_path + "." + t.name() + ".csv";
      if (!write_trace_csv(path, t)) {
        std::cerr << "burstsim: could not write " << path << "\n";
        csv_ok = false;
        continue;
      }
      std::cout << "wrote " << path << "\n";
    }
    if (!csv_ok) return 1;
  }
  if (trace) {
    std::cout << "trace: " << trace->emitted() << " records emitted, "
              << trace->dropped() << " overwritten (ring capacity)\n";
    if (!write_trace_file(*trace, request->trace_path + ".jsonl", false) ||
        !write_trace_file(*trace, request->trace_path + ".perfetto.json",
                          true)) {
      return 1;
    }
    // Parallel traced runs additionally get the (machine-dependent)
    // per-LP runtime timeline — a separate file so the two above stay
    // byte-comparable against the sequential run.
    if (r.lp_shards > 1 && !r.lp_windows.empty()) {
      const std::string path = request->trace_path + ".runtime.perfetto.json";
      std::ofstream out(path, std::ios::trunc);
      if (!out || !write_runtime_trace(out, r.lp_phases, r.lp_windows) ||
          !out.flush()) {
        std::cerr << "burstsim: could not write " << path << "\n";
        return 1;
      }
      std::cout << "wrote " << path << "\n";
    }
  }
  if (flight) {
    std::cout << "flight recorder: " << flight->samples().size()
              << " samples held (" << flight->taken() << " taken, "
              << flight->decimations() << " decimations), period "
              << fmt(flight->period(), 4) << " s, budget "
              << flight->bytes_reserved() << " B\n";
    const std::string csv_path = request->fr_path + ".csv";
    const std::string jsonl_path = request->fr_path + ".jsonl";
    std::ofstream csv(csv_path, std::ios::trunc);
    if (!csv || !flight->write_csv(csv) || !csv.flush()) {
      std::cerr << "burstsim: could not write " << csv_path << "\n";
      return 1;
    }
    std::cout << "wrote " << csv_path << "\n";
    std::ofstream jsonl(jsonl_path, std::ios::trunc);
    if (!jsonl || !flight->write_jsonl(jsonl) || !jsonl.flush()) {
      std::cerr << "burstsim: could not write " << jsonl_path << "\n";
      return 1;
    }
    std::cout << "wrote " << jsonl_path << "\n";
  }
  return 0;
}
