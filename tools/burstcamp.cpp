// burstcamp: runs the whole paper figure set (Figs 2, 3, 4, 13) as one
// cached campaign. A cold run simulates each unique scenario exactly
// once (Figs 3/4/13 share all of theirs); a warm rerun is served
// entirely from the content-addressed result cache. See --help.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/report.hpp"
#include "src/run/campaign.hpp"
#include "src/run/result_store.hpp"
#include "src/topo/campaign.hpp"

namespace {

constexpr const char* kUsage =
    R"(usage: burstcamp [options]

Runs the paper's figure campaign (fig02_cov, fig03_throughput, fig04_loss,
fig13_timeout_dupack) with cross-figure deduplication and an on-disk
result cache, and writes per-figure CSVs plus manifest.json.

With --campaign=FILE, runs a declarative .camp spec instead: scenario
.topo files x sweep axes, coordinated through the shared result store's
claim protocol, so several burstcamp processes pointed at one --cache-dir
split the points between them with zero duplicated simulations (and a
killed worker's points are picked up on the next run).

options:
  --campaign=FILE   run a .camp campaign spec (see examples/topologies)
  --out=DIR         artifact directory            (default: campaign_out)
  --cache-dir=DIR   result cache location         (default: <out>/cache)
  --no-cache        ignore and do not write the result cache
  --threads=N       worker threads                (default: all cores)
  --lp=N            logical processes per scenario (conservative parallel
                    engine; default 1 = sequential; salts the cache key)
  --duration=SECS   simulated seconds per run     (default: paper's 20)
  --seed=N          base RNG seed                 (default: 1)
  --only=NAME[,..]  run a subset of the figures, e.g. --only=fig02_cov
  --profile         attribute simulation wall time to hot-path phases
                    (dispatch/transport/queue) and print the breakdown
  --list            print the figure set and exit
  --print           print each figure's table to stdout (default: summary only)
  --quiet           suppress progress lines
  --help            this text
)";

bool parse_flag(const std::string& arg, const std::string& name,
                std::string* value) {
  const std::string prefix = name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace burst;

  std::string out_dir = "campaign_out";
  std::string cache_dir;
  bool no_cache = false;
  bool list = false;
  bool print_tables = false;
  bool quiet = false;
  bool profile = false;
  unsigned threads = 0;
  int lp_shards = 1;
  std::string only;
  std::string camp_file;
  Scenario base = Scenario::paper_default();
  if (const char* d = std::getenv("BURST_DURATION")) base.duration = std::atof(d);
  if (const char* s = std::getenv("BURST_SEED")) {
    base.seed = static_cast<std::uint64_t>(std::atoll(s));
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--print") {
      print_tables = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (parse_flag(arg, "--out", &value)) {
      out_dir = value;
    } else if (parse_flag(arg, "--cache-dir", &value)) {
      cache_dir = value;
    } else if (parse_flag(arg, "--threads", &value)) {
      threads = static_cast<unsigned>(std::atoi(value.c_str()));
    } else if (parse_flag(arg, "--lp", &value)) {
      lp_shards = std::atoi(value.c_str());
      if (lp_shards < 1) {
        std::cerr << "burstcamp: --lp needs a positive integer\n";
        return 2;
      }
    } else if (parse_flag(arg, "--duration", &value)) {
      base.duration = std::atof(value.c_str());
    } else if (parse_flag(arg, "--seed", &value)) {
      base.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (parse_flag(arg, "--only", &value)) {
      only = value;
    } else if (parse_flag(arg, "--campaign", &value)) {
      camp_file = value;
    } else {
      std::cerr << "burstcamp: unknown option " << arg << "\n\n" << kUsage;
      return 2;
    }
  }
  if (cache_dir.empty()) cache_dir = out_dir + "/cache";

  if (!camp_file.empty()) {
    TopoCampaignSpec spec;
    TopoError terr;
    if (!load_camp_file(camp_file, &spec, &terr)) {
      std::cerr << terr.render(camp_file) << "\n";
      return 1;
    }
    if (list) {
      std::cout << spec.name << "  (" << spec.scenario_files.size()
                << " scenario files";
      for (const auto& s : spec.sweeps) {
        std::cout << " x " << s.field << "[" << s.values.size() << "]";
      }
      std::cout << " = " << spec.num_points() << " points, metric "
                << spec.metric << ")\n";
      return 0;
    }
    TopoCampaignOptions topts;
    topts.cache_dir = cache_dir;
    topts.use_cache = !no_cache;
    topts.threads = threads;
    topts.artifact_dir = out_dir;
    topts.log = quiet ? nullptr : &std::cerr;
    const auto tout = run_topo_campaign(spec, topts, &terr);
    if (!tout) {
      std::cerr << "burstcamp: " << terr.message << "\n";
      return 1;
    }
    print_table(std::cout, {"campaign", "value"},
                {
                    {"name", tout->name},
                    {"planned points", std::to_string(tout->stats.planned)},
                    {"unique scenarios", std::to_string(tout->stats.unique)},
                    {"cache hits", std::to_string(tout->stats.cache_hits)},
                    {"simulated here", std::to_string(tout->stats.simulated)},
                    {"simulated by other workers",
                     std::to_string(tout->stats.farmed_out)},
                    {"artifacts", tout->csv_path.empty() ? out_dir
                                                         : tout->csv_path},
                    {"cache", no_cache ? std::string("disabled") : cache_dir},
                });
    std::cout.flush();
    return 0;
  }

  std::vector<CampaignSweep> sweeps = paper_figure_campaign(base);
  if (list) {
    for (const auto& s : sweeps) {
      std::cout << s.name << "  (" << s.metric_name << ", "
                << s.configs.size() << " series x " << s.client_counts.size()
                << " client counts)\n";
    }
    return 0;
  }
  if (!only.empty()) {
    std::vector<CampaignSweep> selected;
    std::string rest = only;
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      const std::string name = rest.substr(0, comma);
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      bool found = false;
      for (const auto& s : sweeps) {
        if (s.name == name) {
          selected.push_back(s);
          found = true;
        }
      }
      if (!found) {
        std::cerr << "burstcamp: unknown figure '" << name
                  << "' (try --list)\n";
        return 2;
      }
    }
    sweeps = std::move(selected);
  }

  CampaignOptions opts;
  opts.cache_dir = cache_dir;
  opts.use_cache = !no_cache;
  opts.threads = threads;
  opts.artifact_dir = out_dir;
  opts.log = quiet ? nullptr : &std::cerr;
  opts.profile = profile;
  opts.lp_shards = lp_shards;

  const CampaignOutput out = run_campaign(sweeps, opts);

  if (print_tables) {
    for (std::size_t s = 0; s < sweeps.size(); ++s) {
      std::cout << "\n=== " << sweeps[s].name << " ===\n";
      print_metric_vs_clients(std::cout, out.sweeps[s].second,
                              sweeps[s].metric_name, sweeps[s].metric);
    }
    std::cout << '\n';
  }

  const CampaignStats& st = out.stats;
  std::vector<std::vector<std::string>> rows = {
      {"figure sweeps", std::to_string(sweeps.size())},
      {"planned points", std::to_string(st.planned)},
      {"unique scenarios", std::to_string(st.unique)},
      {"cache hits", std::to_string(st.cache_hits)},
      {"simulated", std::to_string(st.simulated)},
      {"stale/corrupt cache entries", std::to_string(st.store_skipped)},
      {"wall time (s)", fmt(st.wall_s, 2)},
      {"artifacts", out_dir},
      {"cache", no_cache ? std::string("disabled") : cache_dir},
  };
  if (profile) {
    double total = 0.0;
    for (const double s : st.phase_seconds) total += s;
    for (std::size_t ph = 0; ph < kProfilePhases; ++ph) {
      const double s = st.phase_seconds[ph];
      rows.push_back(
          {"phase " + std::string(to_string(static_cast<ProfilePhase>(ph))),
           fmt(s, 2) + " s (" +
               fmt(total > 0.0 ? 100.0 * s / total : 0.0, 1) + " %)"});
    }
  }
  for (const LpPhase& p : st.lp_phases) {
    rows.push_back({"lp " + std::to_string(p.lp),
                    std::to_string(p.events) + " events, run " +
                        fmt(p.run_s, 2) + " s, barrier wait " +
                        fmt(p.wait_s, 2) + " s"});
  }
  print_table(std::cout, {"campaign", "value"}, rows);
  std::cout.flush();
  return 0;
}
