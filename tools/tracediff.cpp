// tracediff: line diff of two conformance traces, tuned for the golden
// workflow. Prints the first divergence with context and a summary of
// which trace fields changed on that line; exit status 0 iff identical.
//
//   tracediff golden/reno_fast_recovery.trace conformance-diffs/reno_fast_recovery.actual
//
// A conformance failure writes <name>.actual next to the goldens' diff
// artifacts (see src/testkit/golden.hpp), so the usual loop is: run the
// suite, tracediff the pair it names, decide whether the dynamics change
// is intended, and only then regenerate with BURST_REGEN_GOLDEN=1.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::vector<std::string> read_lines(const char* path, bool& ok) {
  std::ifstream in(path);
  ok = in.good();
  std::vector<std::string> out;
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

/// Splits a canonical trace line into whitespace-separated fields.
std::vector<std::string> fields_of(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> f;
  std::string tok;
  while (is >> tok) f.push_back(tok);
  return f;
}

/// Names the fields that differ between two trace lines ("cwnd=..", the
/// timestamp, the event kind), so the divergence is readable at a
/// glance without manual column counting.
std::string changed_fields(const std::string& a, const std::string& b) {
  const auto fa = fields_of(a), fb = fields_of(b);
  std::string out;
  const std::size_t n = std::max(fa.size(), fb.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string* va = i < fa.size() ? &fa[i] : nullptr;
    const std::string* vb = i < fb.size() ? &fb[i] : nullptr;
    if (va && vb && *va == *vb) continue;
    std::string name;
    if (i == 0) {
      name = "time";
    } else if (i == 1) {
      name = "event";
    } else {
      const std::string& ref = va ? *va : *vb;
      const auto eq = ref.find('=');
      name = eq == std::string::npos ? ref : ref.substr(0, eq);
    }
    if (!out.empty()) out += ", ";
    out += name + " (" + (va ? *va : "<missing>") + " -> " +
           (vb ? *vb : "<missing>") + ")";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: tracediff <expected.trace> <actual.trace>\n");
    return 2;
  }
  bool ok_a = false, ok_b = false;
  const auto expected = read_lines(argv[1], ok_a);
  const auto actual = read_lines(argv[2], ok_b);
  if (!ok_a || !ok_b) {
    std::fprintf(stderr, "tracediff: cannot read %s\n",
                 !ok_a ? argv[1] : argv[2]);
    return 2;
  }

  std::size_t i = 0;
  while (i < expected.size() && i < actual.size() &&
         expected[i] == actual[i]) {
    ++i;
  }
  if (i == expected.size() && i == actual.size()) {
    std::printf("identical (%zu lines)\n", expected.size());
    return 0;
  }

  std::printf("first divergence at line %zu (expected %zu lines, actual %zu)\n",
              i + 1, expected.size(), actual.size());
  const std::size_t lo = i >= 3 ? i - 3 : 0;
  for (std::size_t k = lo; k < i; ++k) {
    std::printf("  %s\n", expected[k].c_str());
  }
  for (std::size_t k = i; k < std::min(expected.size(), i + 5); ++k) {
    std::printf("- %s\n", expected[k].c_str());
  }
  for (std::size_t k = i; k < std::min(actual.size(), i + 5); ++k) {
    std::printf("+ %s\n", actual[k].c_str());
  }
  if (i < expected.size() && i < actual.size()) {
    std::printf("changed: %s\n",
                changed_fields(expected[i], actual[i]).c_str());
  }
  // How far the traces re-converge is often diagnostic: a one-line blip
  // (e.g. a timestamp) vs a wholesale divergence (a dynamics change).
  std::size_t diff_count = 0;
  const std::size_t n = std::max(expected.size(), actual.size());
  for (std::size_t k = 0; k < n; ++k) {
    const bool same = k < expected.size() && k < actual.size() &&
                      expected[k] == actual[k];
    if (!same) ++diff_count;
  }
  std::printf("%zu/%zu lines differ\n", diff_count, n);
  return 1;
}
