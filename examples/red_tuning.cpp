// RED tuning walkthrough: how a gateway operator would use this library
// to pick queue parameters. Sweeps RED thresholds under the paper's
// workload and prints the throughput/burstiness/loss trade-off against
// the plain FIFO baseline.
#include <iostream>

#include "src/core/experiment.hpp"
#include "src/core/report.hpp"

int main(int argc, char** argv) {
  using namespace burst;

  Scenario base = Scenario::paper_default();
  base.num_clients = argc > 1 ? std::atoi(argv[1]) : 45;
  base.transport = Transport::kReno;
  base.duration = 30.0;

  std::cout << "RED tuning at N=" << base.num_clients
            << " Reno clients (B=" << base.gateway_buffer << "):\n\n";

  std::vector<std::vector<std::string>> rows;
  const auto fifo = run_experiment(base);
  rows.push_back({"FIFO", "-", fmt(fifo.cov, 4), std::to_string(fifo.delivered),
                  fmt(fifo.loss_pct, 2), std::to_string(fifo.timeouts)});

  struct Cfg {
    double min_th, max_th, max_p;
  };
  for (const auto& c : {Cfg{5, 15, 0.10}, Cfg{10, 40, 0.10}, Cfg{10, 40, 0.02},
                        Cfg{20, 45, 0.10}, Cfg{40, 50, 0.10}}) {
    Scenario sc = base;
    sc.gateway = GatewayQueue::kRed;
    sc.red_min_th = c.min_th;
    sc.red_max_th = c.max_th;
    sc.red_max_p = c.max_p;
    const auto r = run_experiment(sc);
    rows.push_back({"RED " + fmt(c.min_th, 0) + "/" + fmt(c.max_th, 0),
                    fmt(c.max_p, 2), fmt(r.cov, 4), std::to_string(r.delivered),
                    fmt(r.loss_pct, 2), std::to_string(r.timeouts)});
  }
  print_table(std::cout,
              {"gateway", "max_p", "cov", "delivered", "loss%", "timeouts"},
              rows);

  std::cout << "\nWith this workload every RED setting that meaningfully\n"
            << "shrinks the apparent buffer costs throughput and adds\n"
            << "burstiness versus FIFO — the paper's Sec 3.2.3 conclusion.\n"
            << "Only max_th pushed against the physical buffer approaches\n"
            << "the FIFO baseline again.\n";
  return 0;
}
