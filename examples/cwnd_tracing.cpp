// cwnd_tracing: how to record congestion-window evolution (the paper's
// Figs 5-12) and export it as CSV for plotting.
//
//   $ ./cwnd_tracing [reno|vegas] [num_clients] [out_prefix]
#include <cstring>
#include <iostream>

#include "src/core/experiment.hpp"
#include "src/core/report.hpp"
#include "src/stats/trace_analysis.hpp"

int main(int argc, char** argv) {
  using namespace burst;

  Scenario sc = Scenario::paper_default();
  sc.transport = (argc > 1 && std::strcmp(argv[1], "vegas") == 0)
                     ? Transport::kVegas
                     : Transport::kReno;
  sc.num_clients = argc > 2 ? std::atoi(argv[2]) : 30;
  const std::string prefix = argc > 3 ? argv[3] : "";

  // Trace three spread-out clients, sampled every 0.1 s like the paper.
  ExperimentOptions opts;
  opts.trace_clients = {0, sc.num_clients / 2, sc.num_clients - 1};
  opts.cwnd_sample_period = 0.1;

  std::cout << "tracing " << sc.label() << " for " << sc.duration << " s\n\n";
  const ExperimentResult r = run_experiment(sc, opts);

  print_cwnd_traces(std::cout, r.cwnd_traces, sc.duration, 0.1, 40);

  // Summaries the paper reads off these plots.
  const auto cuts = decrease_counts(r.cwnd_traces, 0.0, sc.duration);
  std::cout << "\nwindow decreases per traced flow:";
  for (const auto c : cuts) std::cout << ' ' << c;
  std::cout << "\nmax synchronized-cut fraction: "
            << fmt(max_sync_fraction(r.cwnd_traces, 0.1, 0.0, sc.duration), 3)
            << "\nexperiment summary: " << to_json(r) << "\n";

  if (!prefix.empty()) {
    for (const auto& t : r.cwnd_traces) {
      const std::string path = prefix + "_" + t.name() + ".csv";
      write_trace_csv(path, t);
      std::cout << "wrote " << path << '\n';
    }
  }
  return 0;
}
