// Traffic characterization: reproduce the paper's methodological argument
// on one page. We aggregate (1) Poisson sources, (2) heavy-tailed Pareto
// on/off sources, and (3) Poisson sources *behind TCP Reno*, then look at
// each aggregate through two lenses: the Hurst parameter (the self-similar
// literature's tool) and the c.o.v. at the RTT time scale (the paper's).
//
// The punchline: TCP-induced burstiness is invisible to Hurst-style
// coarse-scale analysis but dominates at the millisecond scales where
// statistical multiplexing actually operates.
#include <iostream>
#include <memory>

#include "src/app/pareto_on_off_source.hpp"
#include "src/core/dumbbell.hpp"
#include "src/core/report.hpp"
#include "src/stats/binned_counter.hpp"
#include "src/stats/correlation.hpp"
#include "src/stats/hurst.hpp"
#include "src/stats/time_series.hpp"

namespace {

using namespace burst;

struct Characterization {
  double cov_rtt;    // burstiness at one RTT (the multiplexing scale)
  double cov_coarse; // burstiness at ~5 s aggregation
  double hurst;      // variance-time estimate
  double acf1;       // lag-1 autocorrelation of per-RTT counts
  double acf10;      // lag-10 (~one second)
};

Characterization characterize(Transport transport, bool heavy_tailed) {
  Scenario sc = Scenario::paper_default();
  sc.transport = transport;
  sc.num_clients = 40;
  sc.duration = 120.0;

  Simulator sim(7);
  Dumbbell net(sim, sc);
  BinnedCounter bins(sc.rtt_prop(), sc.warmup);
  net.bottleneck_queue().taps().add_arrival_listener([&](const Packet& p, Time) {
    if (p.type == PacketType::kData) bins.record(sim.now());
  });

  std::vector<std::unique_ptr<ParetoOnOffSource>> pareto;
  if (heavy_tailed) {
    ParetoOnOffConfig cfg;
    cfg.shape = 1.4;       // infinite variance: the self-similar regime
    cfg.mean_on = 0.5;
    cfg.mean_off = 0.5;
    cfg.on_rate_pps = 200;  // same 100 pkt/s average as the Poisson load
    for (int i = 0; i < sc.num_clients; ++i) {
      pareto.push_back(std::make_unique<ParetoOnOffSource>(
          sim, net.sender(i), cfg, sim.rng().fork()));
      pareto.back()->start();
    }
  } else {
    net.start_sources();
  }
  sim.run(sc.duration);

  // complete_bins: drop the partial final bin so the coarse-scale c.o.v.
  // is not inflated by a truncated tail sample.
  const auto xs = to_doubles(bins.complete_bins(sc.duration));
  Characterization out{};
  out.cov_rtt = series_stats(xs).cov();
  out.cov_coarse = series_stats(aggregate_series(xs, 64)).cov();
  out.hurst = hurst_variance_time(xs, {1, 2, 4, 8, 16, 32, 64});
  out.acf1 = autocorrelation(xs, 1);
  out.acf10 = autocorrelation(xs, 10);
  return out;
}

}  // namespace

int main() {
  using namespace burst;

  std::cout << "Characterizing 40-source aggregates at the gateway "
            << "(bins = one 80 ms RTT):\n\n";

  const auto poisson = characterize(Transport::kUdp, false);
  const auto pareto = characterize(Transport::kUdp, true);
  const auto tcp = characterize(Transport::kReno, false);

  print_table(
      std::cout,
      {"aggregate", "cov @ RTT", "cov @ 5s", "Hurst", "acf(1)", "acf(10)"},
      {
          {"Poisson/UDP (smooth reference)", fmt(poisson.cov_rtt, 3),
           fmt(poisson.cov_coarse, 3), fmt(poisson.hurst, 2),
           fmt(poisson.acf1, 2), fmt(poisson.acf10, 2)},
          {"Pareto on-off/UDP (heavy tails)", fmt(pareto.cov_rtt, 3),
           fmt(pareto.cov_coarse, 3), fmt(pareto.hurst, 2),
           fmt(pareto.acf1, 2), fmt(pareto.acf10, 2)},
          {"Poisson/TCP Reno (the paper)", fmt(tcp.cov_rtt, 3),
           fmt(tcp.cov_coarse, 3), fmt(tcp.hurst, 2), fmt(tcp.acf1, 2),
           fmt(tcp.acf10, 2)},
      });

  std::cout
      << "\nTwo different kinds of burstiness:\n"
      << "  * Heavy tails raise the Hurst parameter AND coarse-scale cov —\n"
      << "    burstiness that survives aggregation (self-similarity).\n"
      << "  * TCP modulation roughly doubles cov at the RTT scale while\n"
      << "    leaving Hurst near 0.5 — invisible to self-similar analysis\n"
      << "    yet exactly what degrades statistical multiplexing.\n";
  return 0;
}
