// Earth-System-Grid scenario: the distributed-computing workload that
// motivates the paper's introduction. A few sites stage bulk climate
// datasets across a shared wide-area bottleneck while many interactive
// clients generate Poisson control traffic. We ask the paper's question
// end to end: which TCP should the grid run, and what does the choice do
// to transfer times, fairness and the burstiness the gateway sees?
#include <iostream>
#include <memory>
#include <tuple>
#include <vector>

#include "src/app/bulk_source.hpp"
#include "src/core/dumbbell.hpp"
#include "src/core/report.hpp"
#include "src/stats/binned_counter.hpp"
#include "src/stats/fairness.hpp"

namespace {

using namespace burst;

struct GridResult {
  double bulk_goodput_pps = 0.0;   // aggregate bulk transfer rate
  double interactive_loss = 0.0;   // loss experienced at the gateway
  double fairness = 1.0;           // across the bulk transfers
  double cov = 0.0;                // gateway burstiness
  std::uint64_t timeouts = 0;
};

GridResult run_grid(Transport transport) {
  // 8 bulk "data staging" flows + 24 interactive clients.
  Scenario sc = Scenario::paper_default();
  sc.transport = transport;
  sc.num_clients = 32;
  sc.duration = 30.0;

  Simulator sim(42);
  Dumbbell net(sim, sc);

  BinnedCounter bins(sc.rtt_prop(), sc.warmup);
  net.bottleneck_queue().taps().add_arrival_listener([&](const Packet& p, Time) {
    if (p.type == PacketType::kData) bins.record(sim.now());
  });

  // Clients 0..7 become bulk transfers (greedy); 8..31 stay Poisson.
  std::vector<std::unique_ptr<BulkSource>> bulk;
  for (int i = 0; i < 8; ++i) {
    bulk.push_back(std::make_unique<BulkSource>(sim, net.sender(i), 0));
    bulk.back()->start();
  }
  for (int i = 8; i < 32; ++i) net.source(i).start();
  sim.run(sc.duration);

  GridResult out;
  std::vector<double> bulk_delivered;
  double bulk_total = 0.0;
  for (int i = 0; i < 8; ++i) {
    const double d = static_cast<double>(net.tcp_sink(i)->rcv_nxt());
    bulk_delivered.push_back(d);
    bulk_total += d;
  }
  out.bulk_goodput_pps = bulk_total / sc.duration;
  out.fairness = jain_fairness(bulk_delivered);
  out.interactive_loss = 100.0 * net.bottleneck_queue().stats().loss_fraction();
  out.cov = bins.stats_until(sc.duration).cov();
  for (int i = 0; i < 32; ++i) out.timeouts += net.tcp_sender(i)->stats().timeouts;
  return out;
}

}  // namespace

int main() {
  using namespace burst;

  std::cout
      << "Earth System Grid scenario: 8 bulk dataset transfers + 24\n"
      << "interactive Poisson clients share a 32 Mbps wide-area link.\n\n";

  std::vector<std::vector<std::string>> rows;
  for (const auto& [name, t] :
       std::vector<std::pair<std::string, Transport>>{
           {"Tahoe", Transport::kTahoe},
           {"Reno", Transport::kReno},
           {"NewReno", Transport::kNewReno},
           {"Vegas", Transport::kVegas}}) {
    const GridResult r = run_grid(t);
    rows.push_back({name, fmt(r.bulk_goodput_pps, 0), fmt(r.fairness, 3),
                    fmt(r.interactive_loss, 2), fmt(r.cov, 3),
                    std::to_string(r.timeouts)});
  }
  print_table(std::cout,
              {"transport", "bulk pkt/s", "bulk fairness", "gw loss%",
               "gw cov", "timeouts"},
              rows);

  std::cout << "\nReading the table: Vegas keeps the gateway smooth (low\n"
            << "c.o.v.) and nearly loss-free while moving comparable bulk\n"
            << "data — the paper's conclusion for distributed computing\n"
            << "systems. Reno-family stacks pay for their probing with\n"
            << "drops and burstiness that statistical multiplexing then\n"
            << "has to absorb.\n";
  return 0;
}
