// Quickstart: build the paper's dumbbell, run one scenario per transport,
// and print the headline metrics. Start here to learn the public API.
//
//   $ ./quickstart [num_clients]
#include <cstdlib>
#include <iostream>
#include <tuple>

#include "src/core/experiment.hpp"
#include "src/core/report.hpp"

int main(int argc, char** argv) {
  using namespace burst;

  // 1. Start from the paper's Table 1 configuration.
  Scenario base = Scenario::paper_default();
  base.num_clients = argc > 1 ? std::atoi(argv[1]) : 40;
  base.duration = 60.0;  // 3x the paper's run, for tighter c.o.v. estimates

  std::cout << "Dumbbell: " << base.num_clients << " Poisson clients ("
            << 1.0 / base.mean_interarrival << " pkt/s each) -> gateway -> "
            << base.bottleneck_bw_bps / 1e6 << " Mbps bottleneck ("
            << fmt(base.bottleneck_pps(), 1) << " pkt/s, saturates at N="
            << fmt(base.saturation_clients(), 1) << ")\n\n";

  // 2. Run it under each transport and queueing discipline.
  std::vector<std::vector<std::string>> rows;
  for (const auto& [name, transport, red] :
       std::vector<std::tuple<std::string, Transport, bool>>{
           {"UDP", Transport::kUdp, false},
           {"Reno", Transport::kReno, false},
           {"Reno/RED", Transport::kReno, true},
           {"Vegas", Transport::kVegas, false},
           {"Vegas/RED", Transport::kVegas, true}}) {
    Scenario sc = base;
    sc.transport = transport;
    sc.gateway = red ? GatewayQueue::kRed : GatewayQueue::kDropTail;

    // 3. run_experiment builds the topology, runs, and gathers metrics.
    const ExperimentResult r = run_experiment(sc);

    rows.push_back({name, fmt(r.cov, 3), fmt(r.poisson_cov, 3),
                    std::to_string(r.delivered), fmt(r.loss_pct, 2),
                    std::to_string(r.timeouts), fmt(r.fairness, 3)});
  }

  // 4. The c.o.v. column is the paper's burstiness metric: compare each
  //    transport against the analytic Poisson value.
  print_table(std::cout,
              {"transport", "cov", "poisson", "delivered", "loss%",
               "timeouts", "fairness"},
              rows);
  return 0;
}
